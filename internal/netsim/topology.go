package netsim

import (
	"fmt"
	"sort"

	"repro/internal/inet"
	"repro/internal/sim"
)

// Topology owns the node and link inventory of a simulation and computes
// static shortest-path routes, playing the role of ns-2's scenario setup.
type Topology struct {
	engine *sim.Engine
	nodes  []Node
	links  []*Link
	owners map[inet.NetID]Node

	nextPktID  uint64
	nextFlowID inet.FlowID

	// Packet recycling: dead packets are parked in the graveyard and only
	// returned to the pool by a reap event scheduled behind the current
	// one, so observers chained later in the releasing event (tracing
	// hooks, recorders) still read intact fields.
	pool          inet.PacketPool
	graveyard     []*inet.Packet
	reapFn        sim.Handler
	reapScheduled bool
}

// NewTopology creates an empty topology bound to an engine.
func NewTopology(engine *sim.Engine) *Topology {
	if engine == nil {
		panic("netsim: NewTopology with nil engine")
	}
	t := &Topology{
		engine: engine,
		owners: make(map[inet.NetID]Node),
	}
	t.reapFn = t.reap
	return t
}

// AllocPacket returns a zeroed packet from the topology's free list. The
// caller fills in every field it needs; recycled packets carry nothing
// over from their previous life.
func (t *Topology) AllocPacket() *inet.Packet { return t.pool.Get() }

// ReleasePacket recycles a dead packet into the topology's free list. Call
// it only from a final sink (deliver or drop) that owns the packet
// outright; the slot is actually reclaimed in a follow-up event, so hooks
// running later in the same event still see the packet intact. Inner
// packets are not released implicitly — release each layer of a chain
// explicitly once it is dead. Releasing the same packet twice in one cycle
// is a harmless no-op.
func (t *Topology) ReleasePacket(pkt *inet.Packet) {
	if pkt == nil {
		return
	}
	t.graveyard = append(t.graveyard, pkt)
	if !t.reapScheduled {
		t.reapScheduled = true
		t.engine.Schedule(0, t.reapFn)
	}
}

// reap moves graveyard packets into the pool once the releasing event (and
// its same-instant observers) have run.
func (t *Topology) reap() {
	t.reapScheduled = false
	for i, pkt := range t.graveyard {
		t.pool.Put(pkt)
		t.graveyard[i] = nil
	}
	t.graveyard = t.graveyard[:0]
}

// Engine returns the simulation engine.
func (t *Topology) Engine() *sim.Engine { return t.engine }

// AddNode registers a node. Registration is idempotent.
func (t *Topology) AddNode(n Node) {
	for _, existing := range t.nodes {
		if existing == n {
			return
		}
	}
	t.nodes = append(t.nodes, n)
}

// Nodes returns the registered nodes in insertion order.
func (t *Topology) Nodes() []Node { return t.nodes }

// Connect links two nodes (registering them if needed) and records the link
// for route computation.
func (t *Topology) Connect(a, b Node, cfg LinkConfig) *Link {
	t.AddNode(a)
	t.AddNode(b)
	l := Connect(t.engine, a, b, cfg)
	t.links = append(t.links, l)
	return l
}

// Links returns all links in creation order.
func (t *Topology) Links() []*Link { return t.links }

// HookDrops installs fn as the tail-drop observer on both interfaces of
// every link created so far, chaining after any hook already installed.
// Call it once all links are connected.
func (t *Topology) HookDrops(fn func(pkt *inet.Packet)) {
	for _, l := range t.links {
		for _, ifc := range [...]*Iface{l.A(), l.B()} {
			if prev := ifc.DropHook; prev != nil {
				ifc.DropHook = func(pkt *inet.Packet) { prev(pkt); fn(pkt) }
			} else {
				ifc.DropHook = fn
			}
		}
	}
}

// HookDiscards installs fn as the Impair-discard observer on both
// interfaces of every link created so far, chaining after any hook already
// installed. Discarded packets are consumed by the link (they are never
// delivered or tail-drop-hooked), so a topology that pools packets must
// reclaim them here or leak them. Call it once all links are connected.
func (t *Topology) HookDiscards(fn func(pkt *inet.Packet)) {
	for _, l := range t.links {
		for _, ifc := range [...]*Iface{l.A(), l.B()} {
			if prev := ifc.DiscardHook; prev != nil {
				ifc.DiscardHook = func(pkt *inet.Packet) { prev(pkt); fn(pkt) }
			} else {
				ifc.DiscardHook = fn
			}
		}
	}
}

// ClaimNet declares that the given node terminates a network: shortest-path
// routes for the network's prefix lead to that node.
func (t *Topology) ClaimNet(n inet.NetID, owner Node) {
	t.AddNode(owner)
	t.owners[n] = owner
}

// NetOwner returns the node that terminates a network, or nil.
func (t *Topology) NetOwner(n inet.NetID) Node { return t.owners[n] }

// NewPacketID returns a run-unique packet identifier.
func (t *Topology) NewPacketID() uint64 {
	t.nextPktID++
	return t.nextPktID
}

// NewFlowID returns a run-unique flow identifier (starting at 1).
func (t *Topology) NewFlowID() inet.FlowID {
	t.nextFlowID++
	return t.nextFlowID
}

// ComputeRoutes fills every router's prefix-routing table with the first
// hop of the minimum-delay path to each claimed network's owner. It must be
// called after all links are connected and networks claimed, and may be
// called again after topology changes.
func (t *Topology) ComputeRoutes() error {
	adj := t.adjacency()
	for _, n := range t.nodes {
		r, ok := n.(*Router)
		if !ok {
			continue
		}
		dist, firstHop := t.dijkstra(r, adj)
		for netID, owner := range t.owners {
			if owner == Node(r) {
				continue // locally terminated network; delivery is custom
			}
			hop, ok := firstHop[owner]
			if !ok {
				if _, reachable := dist[owner]; !reachable {
					return fmt.Errorf("netsim: no path from %s to owner of net %d (%s)",
						r.Name(), netID, owner.Name())
				}
				continue
			}
			r.AddPrefixRoute(netID, hop)
		}
	}
	return nil
}

// adjacency maps each node to its link endpoints.
func (t *Topology) adjacency() map[Node][]*Iface {
	adj := make(map[Node][]*Iface, len(t.nodes))
	for _, l := range t.links {
		adj[l.a.node] = append(adj[l.a.node], l.a)
		adj[l.b.node] = append(adj[l.b.node], l.b)
	}
	return adj
}

// dijkstra computes minimum-delay distances from src and the first-hop
// interface (out of src) on the shortest path to every reachable node. Ties
// are broken deterministically by node name.
func (t *Topology) dijkstra(src Node, adj map[Node][]*Iface) (map[Node]sim.Time, map[Node]*Iface) {
	const hopCost = sim.Time(1) // keeps zero-delay links from creating ties
	dist := map[Node]sim.Time{src: 0}
	firstHop := make(map[Node]*Iface)
	visited := make(map[Node]bool)

	for {
		// Select the unvisited node with the smallest distance
		// (deterministic tie-break on name).
		var cur Node
		best := sim.MaxTime
		candidates := make([]Node, 0, len(dist))
		for n := range dist {
			if !visited[n] {
				candidates = append(candidates, n)
			}
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name() < candidates[j].Name() })
		for _, n := range candidates {
			if dist[n] < best {
				best = dist[n]
				cur = n
			}
		}
		if cur == nil {
			break
		}
		visited[cur] = true
		for _, ifc := range adj[cur] {
			next := ifc.peer.node
			nd := dist[cur] + ifc.link.cfg.Delay + hopCost
			old, seen := dist[next]
			if !seen || nd < old {
				dist[next] = nd
				if cur == src {
					firstHop[next] = ifc
				} else {
					firstHop[next] = firstHop[cur]
				}
			}
		}
	}
	return dist, firstHop
}
