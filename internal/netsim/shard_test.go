package netsim

import (
	"fmt"
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// crossPair wires a -- b over one link, either on a single engine (plain
// Connect) or split across two engines joined by a ShardExchange, and
// returns a runner plus the recorded arrival log at b.
func crossPair(sharded bool, cfg LinkConfig, sends []sim.Time) (run func() error, log *[]string) {
	var ea, eb *sim.Engine
	x := NewShardExchange()
	ea = sim.NewEngine()
	if sharded {
		eb = sim.NewEngine()
	} else {
		eb = ea
	}
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	x.Connect(ea, eb, a, b, cfg)

	arrivals := &[]string{}
	b.Receive = func(pkt *inet.Packet) {
		*arrivals = append(*arrivals, fmt.Sprintf("%v seq=%d", eb.Now(), pkt.Seq))
	}
	for i, at := range sends {
		seq := uint32(i)
		ea.At(at, func() {
			a.Send(&inet.Packet{Src: a.Addr(), Dst: b.Addr(), Proto: inet.ProtoUDP, Size: 125, Seq: seq})
		})
	}
	if !sharded {
		return func() error { return ea.RunAll() }, arrivals
	}
	g := sim.NewShardGroup([]*sim.Engine{ea, eb}, x.Lookahead(), 2)
	g.SetExchange(x.Flush)
	return g.RunAll, arrivals
}

func TestCrossShardLinkMatchesPlainLink(t *testing.T) {
	// Same wire parameters, same send schedule: the sharded link must
	// deliver every packet at exactly the instants the serial link does,
	// including packets that queue behind a busy transmitter.
	cfg := LinkConfig{BandwidthBPS: 1_000_000, Delay: 3 * sim.Millisecond}
	sends := []sim.Time{
		0,
		100 * sim.Microsecond, // lands while packet 0 still serializes (1 ms tx time)
		200 * sim.Microsecond,
		10 * sim.Millisecond,
		10 * sim.Millisecond, // same-instant pair
	}
	runSerial, serialLog := crossPair(false, cfg, sends)
	if err := runSerial(); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	runSharded, shardedLog := crossPair(true, cfg, sends)
	if err := runSharded(); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if len(*serialLog) != len(sends) {
		t.Fatalf("serial delivered %d of %d", len(*serialLog), len(sends))
	}
	if fmt.Sprint(*serialLog) != fmt.Sprint(*shardedLog) {
		t.Fatalf("cross-shard deliveries diverged:\nserial  %v\nsharded %v", *serialLog, *shardedLog)
	}
}

func TestCrossShardDuplexAndCounters(t *testing.T) {
	ea, eb := sim.NewEngine(), sim.NewEngine()
	x := NewShardExchange()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	l := x.Connect(ea, eb, a, b, LinkConfig{Delay: 2 * sim.Millisecond})

	gotA, gotB := 0, 0
	a.Receive = func(*inet.Packet) { gotA++ }
	b.Receive = func(*inet.Packet) { gotB++ }
	ea.At(0, func() {
		a.Send(&inet.Packet{Src: a.Addr(), Dst: b.Addr(), Proto: inet.ProtoUDP, Size: 100})
	})
	eb.At(sim.Millisecond, func() {
		b.Send(&inet.Packet{Src: b.Addr(), Dst: a.Addr(), Proto: inet.ProtoUDP, Size: 100})
	})
	g := sim.NewShardGroup([]*sim.Engine{ea, eb}, x.Lookahead(), 2)
	g.SetExchange(x.Flush)
	if err := g.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if gotA != 1 || gotB != 1 {
		t.Fatalf("deliveries a=%d b=%d, want 1/1", gotA, gotB)
	}
	if l.A().Sent() != 1 || l.B().Sent() != 1 {
		t.Fatalf("sent a=%d b=%d, want 1/1", l.A().Sent(), l.B().Sent())
	}
	if l.A().delivers != 1 || l.B().delivers != 1 {
		t.Fatalf("delivers a=%d b=%d, want 1/1", l.A().delivers, l.B().delivers)
	}
}

func TestShardExchangeSameEngineFallsBack(t *testing.T) {
	e := sim.NewEngine()
	x := NewShardExchange()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	l := x.Connect(e, e, a, b, LinkConfig{Delay: sim.Millisecond})
	if x.Ports() != 0 {
		t.Fatalf("same-engine connect registered %d ports, want 0", x.Ports())
	}
	if x.Lookahead() != 0 {
		t.Fatalf("lookahead = %v, want 0 with no cross links", x.Lookahead())
	}
	got := 0
	b.Receive = func(*inet.Packet) { got++ }
	a.Send(&inet.Packet{Src: a.Addr(), Dst: b.Addr(), Proto: inet.ProtoUDP, Size: 64})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got != 1 || l.A().xport != nil {
		t.Fatalf("fallback link misbehaved: got=%d xport=%v", got, l.A().xport)
	}
}

func TestShardExchangeLookaheadIsMinCrossDelay(t *testing.T) {
	ea, eb := sim.NewEngine(), sim.NewEngine()
	x := NewShardExchange()
	mk := func(i int) (*Host, *Host) {
		return NewHost(fmt.Sprintf("a%d", i), inet.Addr{Net: inet.NetID(10 + i), Host: 1}),
			NewHost(fmt.Sprintf("b%d", i), inet.Addr{Net: inet.NetID(20 + i), Host: 1})
	}
	a0, b0 := mk(0)
	a1, b1 := mk(1)
	x.Connect(ea, eb, a0, b0, LinkConfig{Delay: 5 * sim.Millisecond})
	x.Connect(ea, eb, a1, b1, LinkConfig{Delay: 2 * sim.Millisecond})
	if x.Lookahead() != 2*sim.Millisecond {
		t.Fatalf("lookahead = %v, want 2ms", x.Lookahead())
	}
	if x.Ports() != 4 {
		t.Fatalf("ports = %d, want 4", x.Ports())
	}
}

func TestCrossShardZeroDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delay cross-shard link did not panic")
		}
	}()
	x := NewShardExchange()
	x.Connect(sim.NewEngine(), sim.NewEngine(),
		NewHost("a", inet.Addr{Net: 1, Host: 1}), NewHost("b", inet.Addr{Net: 2, Host: 1}),
		LinkConfig{})
}

// BenchmarkShardMailbox pins the steady-state cost of the cross-shard path:
// once outboxes, pending FIFOs, and engine free lists are warm, pushing a
// packet through a barrier must not allocate.
func BenchmarkShardMailbox(b *testing.B) {
	ea, eb := sim.NewEngine(), sim.NewEngine()
	x := NewShardExchange()
	src := NewHost("src", inet.Addr{Net: 1, Host: 1})
	dst := NewHost("dst", inet.Addr{Net: 2, Host: 1})
	x.Connect(ea, eb, src, dst, LinkConfig{Delay: sim.Millisecond})
	g := sim.NewShardGroup([]*sim.Engine{ea, eb}, x.Lookahead(), 1)
	g.SetExchange(x.Flush)

	pkt := &inet.Packet{Src: src.Addr(), Dst: dst.Addr(), Proto: inet.ProtoUDP, Size: 160}
	delivered := 0
	dst.Receive = func(*inet.Packet) { delivered++ }
	send := func() { src.Send(pkt) }

	// Warm every free list with one full cycle before measuring.
	ea.At(ea.Now(), send)
	if err := g.RunAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ea.At(ea.Now(), send)
		if err := g.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	if delivered != b.N+1 {
		b.Fatalf("delivered %d, want %d", delivered, b.N+1)
	}
}
