package netsim

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// lineTopology builds cn -- r1 -- r2 -- dst and returns the pieces.
func lineTopology(t *testing.T) (*sim.Engine, *Topology, *Host, *Router, *Router, *Host) {
	t.Helper()
	e := sim.NewEngine()
	topo := NewTopology(e)
	cn := NewHost("cn", inet.Addr{Net: 1, Host: 1})
	r1 := NewRouter("r1", inet.Addr{Net: 100, Host: 1})
	r2 := NewRouter("r2", inet.Addr{Net: 100, Host: 2})
	dst := NewHost("dst", inet.Addr{Net: 2, Host: 1})
	topo.Connect(cn, r1, LinkConfig{Delay: sim.Millisecond})
	topo.Connect(r1, r2, LinkConfig{Delay: sim.Millisecond})
	topo.Connect(r2, dst, LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(1, cn)
	topo.ClaimNet(2, dst)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	return e, topo, cn, r1, r2, dst
}

func TestRouterForwardsAlongComputedRoutes(t *testing.T) {
	e, _, cn, _, _, dst := lineTopology(t)
	var got *inet.Packet
	dst.Receive = func(pkt *inet.Packet) { got = pkt }
	cn.Send(newPkt(cn.Addr(), dst.Addr(), 100))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil {
		t.Fatal("packet not delivered across two routers")
	}
	if e.Now() != 3*sim.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", e.Now())
	}
}

func TestRouterReverseDirection(t *testing.T) {
	e, _, cn, _, _, dst := lineTopology(t)
	got := 0
	cn.Receive = func(pkt *inet.Packet) { got++ }
	dst.Send(newPkt(dst.Addr(), cn.Addr(), 100))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got != 1 {
		t.Fatal("reverse-path packet not delivered")
	}
}

func TestRouterNoRouteDrops(t *testing.T) {
	e, _, cn, r1, _, _ := lineTopology(t)
	cn.Send(newPkt(cn.Addr(), inet.Addr{Net: 77, Host: 1}, 100))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if r1.NoRouteDrops() != 1 {
		t.Fatalf("NoRouteDrops = %d, want 1", r1.NoRouteDrops())
	}
}

func TestHostRoutePrecedence(t *testing.T) {
	e, _, cn, r1, _, dst := lineTopology(t)
	// Host route for dst's exact address pointing back toward cn wins over
	// the prefix route toward r2.
	backIface := r1.Ifaces()[0] // r1->cn
	special := inet.Addr{Net: 2, Host: 99}
	r1.AddHostRoute(special, backIface)

	cnGot, dstGot := 0, 0
	cn.Receive = func(pkt *inet.Packet) { cnGot++ }
	dst.Receive = func(pkt *inet.Packet) { dstGot++ }

	// Inject a packet at r1 destined to the special host: it must bounce
	// back toward cn (where it is dropped as foreign), never reach dst.
	p := newPkt(dst.Addr(), special, 100)
	r1.HandlePacket(nil, p)
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if dstGot != 0 {
		t.Fatal("host route did not take precedence over prefix route")
	}
	if cnGot != 0 { // special != cn addr; host silently ignores
		t.Fatal("unexpected delivery at cn")
	}

	r1.RemoveHostRoute(special)
	if r1.Route(special) == backIface {
		t.Fatal("RemoveHostRoute did not remove the route")
	}
}

func TestRouterIntercept(t *testing.T) {
	e, _, cn, r1, _, dst := lineTopology(t)
	intercepted := 0
	r1.Intercept = func(in *Iface, pkt *inet.Packet) bool {
		if pkt.Dst == dst.Addr() {
			intercepted++
			return true
		}
		return false
	}
	delivered := 0
	dst.Receive = func(pkt *inet.Packet) { delivered++ }
	cn.Send(newPkt(cn.Addr(), dst.Addr(), 100))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if intercepted != 1 || delivered != 0 {
		t.Fatalf("intercepted=%d delivered=%d, want 1/0", intercepted, delivered)
	}
}

func TestRouterLocalDeliver(t *testing.T) {
	e, _, cn, r1, _, _ := lineTopology(t)
	var got *inet.Packet
	r1.LocalDeliver = func(in *Iface, pkt *inet.Packet) bool {
		got = pkt
		return true
	}
	cn.Send(newPkt(cn.Addr(), r1.Addr(), 64))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil {
		t.Fatal("packet addressed to router not locally delivered")
	}
}

func TestRouterTunnelEndpointDecapsulatesAndForwards(t *testing.T) {
	e, _, cn, r1, _, dst := lineTopology(t)
	var got *inet.Packet
	dst.Receive = func(pkt *inet.Packet) { got = pkt }

	inner := newPkt(cn.Addr(), dst.Addr(), 100)
	inner.Seq = 5
	// Tunnel from cn to r1; r1 must decapsulate and forward to dst.
	cn.Send(inner.Encapsulate(cn.Addr(), r1.Addr()))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil || got.Seq != 5 {
		t.Fatalf("inner packet not forwarded after decapsulation: %v", got)
	}
}

func TestComputeRoutesPrefersLowDelayPath(t *testing.T) {
	e := sim.NewEngine()
	topo := NewTopology(e)
	// Diamond: src -- a -- dst (fast), src -- b -- dst (slow).
	src := NewRouter("src", inet.Addr{Net: 100, Host: 1})
	a := NewRouter("a", inet.Addr{Net: 100, Host: 2})
	b := NewRouter("b", inet.Addr{Net: 100, Host: 3})
	dst := NewRouter("dst", inet.Addr{Net: 100, Host: 4})

	lsa := topo.Connect(src, a, LinkConfig{Delay: sim.Millisecond})
	topo.Connect(src, b, LinkConfig{Delay: 40 * sim.Millisecond})
	topo.Connect(a, dst, LinkConfig{Delay: sim.Millisecond})
	topo.Connect(b, dst, LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(5, dst)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	if got := src.Route(inet.Addr{Net: 5, Host: 1}); got != lsa.A() {
		t.Fatalf("route via %v, want via fast path %v", got, lsa.A())
	}
}

func TestComputeRoutesUnreachable(t *testing.T) {
	e := sim.NewEngine()
	topo := NewTopology(e)
	r := NewRouter("r", inet.Addr{Net: 100, Host: 1})
	island := NewHost("island", inet.Addr{Net: 9, Host: 1})
	topo.AddNode(r)
	topo.AddNode(island)
	topo.ClaimNet(9, island)
	if err := topo.ComputeRoutes(); err == nil {
		t.Fatal("ComputeRoutes succeeded with unreachable network owner")
	}
}

func TestTopologyIDGenerators(t *testing.T) {
	topo := NewTopology(sim.NewEngine())
	if a, b := topo.NewPacketID(), topo.NewPacketID(); a == b || a == 0 {
		t.Fatalf("packet IDs not unique: %d %d", a, b)
	}
	if f := topo.NewFlowID(); f != 1 {
		t.Fatalf("first flow ID = %d, want 1", f)
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	topo := NewTopology(sim.NewEngine())
	h := NewHost("h", inet.Addr{Net: 1, Host: 1})
	topo.AddNode(h)
	topo.AddNode(h)
	if len(topo.Nodes()) != 1 {
		t.Fatalf("Nodes() has %d entries, want 1", len(topo.Nodes()))
	}
}
