// Package netsim models the wired part of the network: nodes, duplex
// point-to-point links with bandwidth, propagation delay and droptail
// queues, a generic router with prefix/host routes and tunnel endpoints,
// and a topology builder that computes static shortest-path routes.
package netsim

import (
	"repro/internal/inet"
)

// Node is anything that can terminate a link.
type Node interface {
	// Name returns a human-readable identifier used in traces.
	Name() string
	// HandlePacket is invoked by the engine when a packet arrives on one
	// of the node's interfaces.
	HandlePacket(in *Iface, pkt *inet.Packet)
}

// Host is a simple end system with a single wired interface. The
// correspondent node in every experiment is a Host.
type Host struct {
	name string
	addr inet.Addr
	ifc  *Iface

	// Receive is the upper-layer delivery callback. A nil Receive
	// silently discards (the packet reached its destination but no
	// application is listening).
	Receive func(pkt *inet.Packet)
}

// NewHost creates a host with the given name and address. Its interface is
// assigned when a link is attached.
func NewHost(name string, addr inet.Addr) *Host {
	return &Host{name: name, addr: addr}
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Addr returns the host's address.
func (h *Host) Addr() inet.Addr { return h.addr }

// Iface returns the host's single interface (nil until linked).
func (h *Host) Iface() *Iface { return h.ifc }

// HandlePacket implements Node: packets addressed to the host go to the
// upper layer unchanged — tunnel packets included, since a mobile host may
// own the inner destination (its RCoA or home address) under a different
// care-of address. Everything else is discarded; hosts do not forward.
func (h *Host) HandlePacket(in *Iface, pkt *inet.Packet) {
	if pkt.Dst != h.addr {
		return
	}
	if h.Receive != nil {
		h.Receive(pkt)
	}
}

// Send transmits a packet on the host's interface.
func (h *Host) Send(pkt *inet.Packet) {
	if h.ifc == nil {
		panic("netsim: host " + h.name + " has no link")
	}
	h.ifc.Send(pkt)
}

// AttachIface records the interface created when a link is connected. It
// implements IfaceAttacher; hosts accept exactly one link.
func (h *Host) AttachIface(ifc *Iface) {
	if h.ifc != nil {
		panic("netsim: host " + h.name + " already linked")
	}
	h.ifc = ifc
}

// IfaceAttacher is implemented by node types that want to be told about new
// interfaces when links are created; Connect invokes it on both endpoints.
type IfaceAttacher interface {
	AttachIface(*Iface)
}
