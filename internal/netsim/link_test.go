package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/inet"
	"repro/internal/sim"
)

func newPkt(src, dst inet.Addr, size int) *inet.Packet {
	return &inet.Packet{Src: src, Dst: dst, Proto: inet.ProtoUDP, Size: size}
}

func TestLinkDeliversWithDelay(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	Connect(e, a, b, LinkConfig{Delay: 5 * sim.Millisecond})

	var arrived sim.Time = -1
	b.Receive = func(pkt *inet.Packet) { arrived = e.Now() }
	a.Send(newPkt(a.Addr(), b.Addr(), 100))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if arrived != 5*sim.Millisecond {
		t.Fatalf("arrived at %v, want 5ms", arrived)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	// 1 Mb/s: a 1250-byte packet takes exactly 10 ms to serialize.
	Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, Delay: 2 * sim.Millisecond})

	var arrived sim.Time = -1
	b.Receive = func(pkt *inet.Packet) { arrived = e.Now() }
	a.Send(newPkt(a.Addr(), b.Addr(), 1250))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if want := 12 * sim.Millisecond; arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestLinkQueuesBackToBackPackets(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, Delay: 0})

	var arrivals []sim.Time
	b.Receive = func(pkt *inet.Packet) { arrivals = append(arrivals, e.Now()) }
	for i := 0; i < 3; i++ {
		a.Send(newPkt(a.Addr(), b.Addr(), 1250)) // 10 ms each
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []sim.Time{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	l := Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, QueueLimit: 2})

	var dropped []*inet.Packet
	l.A().DropHook = func(pkt *inet.Packet) { dropped = append(dropped, pkt) }

	received := 0
	b.Receive = func(pkt *inet.Packet) { received++ }
	// One in transmission + two queued; the rest tail-drop.
	for i := 0; i < 5; i++ {
		a.Send(newPkt(a.Addr(), b.Addr(), 1250))
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 3 {
		t.Fatalf("received = %d, want 3", received)
	}
	if l.A().Dropped() != 2 || len(dropped) != 2 {
		t.Fatalf("dropped = %d (hook saw %d), want 2", l.A().Dropped(), len(dropped))
	}
	if l.A().Sent() != 3 {
		t.Fatalf("sent = %d, want 3", l.A().Sent())
	}
}

func TestLinkIsFullDuplex(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, Delay: sim.Millisecond})

	var aGot, bGot sim.Time = -1, -1
	a.Receive = func(pkt *inet.Packet) { aGot = e.Now() }
	b.Receive = func(pkt *inet.Packet) { bGot = e.Now() }
	a.Send(newPkt(a.Addr(), b.Addr(), 1250))
	b.Send(newPkt(b.Addr(), a.Addr(), 1250))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	// Both directions proceed simultaneously: 10 ms tx + 1 ms prop each.
	if want := 11 * sim.Millisecond; aGot != want || bGot != want {
		t.Fatalf("aGot=%v bGot=%v, want both %v", aGot, bGot, want)
	}
}

func TestHostIgnoresForeignPackets(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	Connect(e, a, b, LinkConfig{})

	received := 0
	b.Receive = func(pkt *inet.Packet) { received++ }
	a.Send(newPkt(a.Addr(), inet.Addr{Net: 9, Host: 9}, 100))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 0 {
		t.Fatal("host delivered packet not addressed to it")
	}
}

func TestHostDeliversTunnelsUnchanged(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	Connect(e, a, b, LinkConfig{})

	var got *inet.Packet
	b.Receive = func(pkt *inet.Packet) { got = pkt }
	inner := newPkt(a.Addr(), b.Addr(), 100)
	inner.Seq = 77
	a.Send(inner.Encapsulate(a.Addr(), b.Addr()))
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil || got.Proto != inet.ProtoTunnel {
		t.Fatalf("got = %v, want tunnel packet delivered unchanged", got)
	}
	if inner := got.Innermost(); inner.Seq != 77 || inner.Proto != inet.ProtoUDP {
		t.Fatalf("inner = %v", inner)
	}
}

func TestHostRejectsSecondLink(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	c := NewHost("c", inet.Addr{Net: 3, Host: 1})
	Connect(e, a, b, LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("second link to a host did not panic")
		}
	}()
	Connect(e, a, c, LinkConfig{})
}

func TestIfaceString(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("alpha", inet.Addr{Net: 1, Host: 1})
	b := NewHost("beta", inet.Addr{Net: 2, Host: 1})
	l := Connect(e, a, b, LinkConfig{})
	if got := l.A().String(); got != "alpha->beta" {
		t.Fatalf("String() = %q", got)
	}
	if l.A().Peer() != Node(b) {
		t.Fatal("Peer() wrong")
	}
	if l.B().PeerIface() != l.A() {
		t.Fatal("PeerIface() wrong")
	}
}

func TestImpairDiscardsSilently(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	l := Connect(e, a, b, LinkConfig{})
	received := 0
	b.Receive = func(pkt *inet.Packet) { received++ }
	n := 0
	l.A().Impair = func(pkt *inet.Packet) bool {
		n++
		return n%2 == 1 // drop every other packet
	}
	for i := 0; i < 6; i++ {
		a.Send(newPkt(a.Addr(), b.Addr(), 100))
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 3 {
		t.Fatalf("received = %d, want 3", received)
	}
	if l.A().Dropped() != 0 {
		t.Fatal("impaired packets must not count as tail drops")
	}
}

// Property: without impairment, every packet offered to an uncongested
// link is delivered exactly once (conservation).
func TestPropertyLinkConservation(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := sim.NewEngine()
		a := NewHost("a", inet.Addr{Net: 1, Host: 1})
		b := NewHost("b", inet.Addr{Net: 2, Host: 1})
		Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, Delay: sim.Millisecond, QueueLimit: len(sizes) + 1})
		received := 0
		b.Receive = func(pkt *inet.Packet) { received++ }
		for _, s := range sizes {
			a.Send(newPkt(a.Addr(), b.Addr(), int(s)+1))
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		return received == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestByteLimitedQueue(t *testing.T) {
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	// Byte mode: queue holds 2000 bytes behind the transmitting packet.
	l := Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, QueueLimitBytes: 2000})

	received := 0
	b.Receive = func(pkt *inet.Packet) { received++ }
	// First transmits; two 1000-byte packets fill the byte budget; the
	// fourth overflows.
	for i := 0; i < 4; i++ {
		a.Send(newPkt(a.Addr(), b.Addr(), 1000))
	}
	if got := l.A().QueueBytes(); got != 2000 {
		t.Fatalf("QueueBytes = %d, want 2000", got)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 3 || l.A().Dropped() != 1 {
		t.Fatalf("received=%d dropped=%d, want 3/1", received, l.A().Dropped())
	}
	if l.A().QueueBytes() != 0 {
		t.Fatalf("QueueBytes = %d after drain, want 0", l.A().QueueBytes())
	}
}

// Property: byte accounting stays consistent with the classic queue's
// contents under any traffic pattern, and the fused path reconstructs the
// identical value from its departure ring.
func TestPropertyByteAccounting(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := sim.NewEngine()
		cfg := LinkConfig{BandwidthBPS: 100_000, QueueLimitBytes: 500}
		prev := SetFusedLinks(false)
		a := NewHost("a", inet.Addr{Net: 1, Host: 1})
		b := NewHost("b", inet.Addr{Net: 2, Host: 1})
		lc := Connect(e, a, b, cfg)
		SetFusedLinks(true)
		c := NewHost("c", inet.Addr{Net: 3, Host: 1})
		d := NewHost("d", inet.Addr{Net: 4, Host: 1})
		lf := Connect(e, c, d, cfg)
		SetFusedLinks(prev)
		b.Receive = func(pkt *inet.Packet) {}
		d.Receive = func(pkt *inet.Packet) {}
		for _, s := range sizes {
			a.Send(newPkt(a.Addr(), b.Addr(), int(s)+1))
			c.Send(newPkt(c.Addr(), d.Addr(), int(s)+1))
			sum := 0
			for _, p := range lc.a.queue {
				sum += p.Size
			}
			if sum != lc.A().QueueBytes() || sum > 500 {
				return false
			}
			if lf.A().QueueBytes() != sum || lf.A().QueueLen() != lc.A().QueueLen() {
				return false
			}
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		return lc.A().QueueBytes() == 0 && lf.A().QueueBytes() == 0 &&
			lf.A().Sent() == lc.A().Sent() && lf.A().Dropped() == lc.A().Dropped()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
