package netsim

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// faultRig is a one-link world for exercising the injector: a sends, b
// records which sequence numbers survived.
type faultRig struct {
	e    *sim.Engine
	a, b *Host
	l    *Link
	got  []uint32
}

func newFaultRig() *faultRig {
	r := &faultRig{e: sim.NewEngine()}
	r.a = NewHost("a", inet.Addr{Net: 1, Host: 1})
	r.b = NewHost("b", inet.Addr{Net: 2, Host: 1})
	r.l = Connect(r.e, r.a, r.b, LinkConfig{Delay: sim.Millisecond})
	r.b.Receive = func(pkt *inet.Packet) { r.got = append(r.got, pkt.Seq) }
	return r
}

func (r *faultRig) send(t *testing.T, n int, proto inet.Proto) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.a.Send(&inet.Packet{
			Src: r.a.Addr(), Dst: r.b.Addr(), Proto: proto, Seq: uint32(i), Size: 100,
		})
	}
	if err := r.e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

// survivors runs n packets through a fresh rig under the given seed and
// config and returns the delivered sequence numbers.
func survivors(t *testing.T, seed int64, cfg FaultConfig, n int) []uint32 {
	t.Helper()
	r := newFaultRig()
	fi := NewFaultInjector(seed)
	fi.Attach(r.l.A(), cfg)
	r.send(t, n, inet.ProtoUDP)
	return r.got
}

func TestFaultInjectorDeterministicPerSeed(t *testing.T) {
	cfg := FaultConfig{LossRate: 0.3}
	first := survivors(t, 42, cfg, 200)
	again := survivors(t, 42, cfg, 200)
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("degenerate pattern: %d/200 survived", len(first))
	}
	if len(first) != len(again) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("same seed, different pattern at %d: %d vs %d", i, first[i], again[i])
		}
	}
	other := survivors(t, 43, cfg, 200)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-packet patterns")
	}
}

// The fault pattern on one interface must not depend on traffic crossing
// other attached interfaces: each interface draws from its own stream.
func TestFaultInjectorStreamsAreIndependent(t *testing.T) {
	run := func(reverseTraffic int) []uint32 {
		r := newFaultRig()
		fi := NewFaultInjector(7)
		cfg := FaultConfig{LossRate: 0.3}
		fi.Attach(r.l.A(), cfg)
		fi.Attach(r.l.B(), cfg)
		r.a.Receive = func(pkt *inet.Packet) {}
		// Interleave b→a traffic, which consumes draws from B's stream only.
		for i := 0; i < reverseTraffic; i++ {
			r.b.Send(&inet.Packet{
				Src: r.b.Addr(), Dst: r.a.Addr(), Proto: inet.ProtoUDP, Size: 100,
			})
		}
		r.send(t, 100, inet.ProtoUDP)
		return r.got
	}
	quiet := run(0)
	busy := run(50)
	if len(quiet) != len(busy) {
		t.Fatalf("reverse traffic changed the forward pattern: %d vs %d survivors",
			len(quiet), len(busy))
	}
	for i := range quiet {
		if quiet[i] != busy[i] {
			t.Fatalf("reverse traffic changed the forward pattern at %d", i)
		}
	}
}

func TestFaultInjectorControlOnlySparesData(t *testing.T) {
	r := newFaultRig()
	fi := NewFaultInjector(1)
	fi.Attach(r.l.A(), FaultConfig{LossRate: 1, ControlOnly: true})
	r.send(t, 10, inet.ProtoUDP)
	if len(r.got) != 10 {
		t.Fatalf("data packets injected despite ControlOnly: %d/10 survived", len(r.got))
	}
	r.got = nil
	r.send(t, 10, inet.ProtoControl)
	if len(r.got) != 0 {
		t.Fatalf("control packets survived LossRate 1: %d", len(r.got))
	}
	if got := fi.Lost(r.l.A()); got != 10 {
		t.Fatalf("Lost = %d, want 10", got)
	}
}

// Tunnelled control must be recognized through the encapsulation, since
// inter-router signaling may ride a tunnel.
func TestFaultInjectorControlOnlySeesTunnelledControl(t *testing.T) {
	r := newFaultRig()
	fi := NewFaultInjector(1)
	fi.Attach(r.l.A(), FaultConfig{LossRate: 1, ControlOnly: true})
	inner := &inet.Packet{
		Src: r.a.Addr(), Dst: r.b.Addr(), Proto: inet.ProtoControl, Size: 64,
	}
	r.a.Send(inner.Encapsulate(r.a.Addr(), r.b.Addr()))
	if err := r.e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(r.got) != 0 {
		t.Fatal("tunnelled control escaped the ControlOnly injector")
	}
}

func TestFaultInjectorClampsRates(t *testing.T) {
	if got := survivors(t, 1, FaultConfig{LossRate: 2}, 10); len(got) != 0 {
		t.Fatalf("LossRate 2 (clamped to 1) let %d packets through", len(got))
	}
	if got := survivors(t, 1, FaultConfig{LossRate: -1, CorruptRate: -1}, 10); len(got) != 10 {
		t.Fatalf("negative rates (clamped to 0) dropped packets: %d/10", len(got))
	}
}

func TestFaultInjectorCorruptionCountsSeparately(t *testing.T) {
	r := newFaultRig()
	fi := NewFaultInjector(1)
	var corrupt, silent int
	fi.OnInject = func(ifc *Iface, pkt *inet.Packet, corrupted bool) {
		if corrupted {
			corrupt++
		} else {
			silent++
		}
	}
	fi.Attach(r.l.A(), FaultConfig{CorruptRate: 1})
	r.send(t, 5, inet.ProtoUDP)
	if len(r.got) != 0 {
		t.Fatalf("corrupted packets delivered: %d", len(r.got))
	}
	if fi.Corrupted(r.l.A()) != 5 || fi.Lost(r.l.A()) != 0 {
		t.Fatalf("counters: corrupted=%d lost=%d, want 5/0",
			fi.Corrupted(r.l.A()), fi.Lost(r.l.A()))
	}
	if corrupt != 5 || silent != 0 {
		t.Fatalf("observer saw corrupt=%d silent=%d, want 5/0", corrupt, silent)
	}
	if fi.Injected() != 5 {
		t.Fatalf("Injected = %d, want 5", fi.Injected())
	}
	// Unattached interfaces report zero, not a panic.
	if fi.Lost(r.l.B()) != 0 || fi.Corrupted(r.l.B()) != 0 {
		t.Fatal("unattached interface reported nonzero counters")
	}
}

// An Impair hook present before Attach must keep seeing the packets the
// injector lets through.
func TestFaultInjectorChainsExistingImpair(t *testing.T) {
	r := newFaultRig()
	seen := 0
	r.l.A().Impair = func(pkt *inet.Packet) bool {
		seen++
		return pkt.Seq == 0 // the hook itself drops the first packet
	}
	fi := NewFaultInjector(9)
	fi.Attach(r.l.A(), FaultConfig{LossRate: 0.4})
	r.send(t, 50, inet.ProtoUDP)

	injected := int(fi.Lost(r.l.A()))
	if injected == 0 {
		t.Fatal("injector never engaged")
	}
	if want := 50 - injected; seen != want {
		t.Fatalf("chained hook saw %d packets, want %d (survivors of %d injected)",
			seen, want, injected)
	}
	for _, seq := range r.got {
		if seq == 0 {
			t.Fatal("chained hook's own drop was lost")
		}
	}
}

// Re-attaching reconfigures in place: the stream and counters carry on.
func TestFaultInjectorReattachKeepsStream(t *testing.T) {
	r := newFaultRig()
	fi := NewFaultInjector(3)
	fi.Attach(r.l.A(), FaultConfig{LossRate: 1})
	r.send(t, 5, inet.ProtoUDP)
	if len(r.got) != 0 {
		t.Fatalf("first config let %d packets through", len(r.got))
	}
	fi.Attach(r.l.A(), FaultConfig{LossRate: 0})
	r.send(t, 5, inet.ProtoUDP)
	if len(r.got) != 5 {
		t.Fatalf("re-attached config dropped packets: %d/5", len(r.got))
	}
	if fi.Lost(r.l.A()) != 5 {
		t.Fatalf("Lost = %d after reattach, want 5 (counters kept)", fi.Lost(r.l.A()))
	}
}
