package netsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/inet"
	"repro/internal/sim"
)

// ShardExchange owns the cross-shard mailboxes of a partitioned topology.
// A link created through ShardExchange.Connect joins nodes whose engines
// belong to different shards of a sim.ShardGroup: during an epoch each
// direction buffers finished transmissions in an outbox private to the
// sending shard, and Flush — installed as the group's exchange callback —
// migrates them into the receiving engines at the barrier.
//
// Flush runs single-threaded over ports in creation order, so the sequence
// numbers the receiving engines assign to arrival events are a pure
// function of the partition, never of worker scheduling: sharded runs are
// deterministic for a fixed shard count.
type ShardExchange struct {
	ports []*xPort
	// minDelay is the smallest one-way delay over all cross-shard links,
	// which is exactly the lookahead a ShardGroup over this partition may
	// use. Zero while no cross-shard link exists.
	minDelay sim.Time
	// dirtyPorts counts ports whose outbox is non-empty. A port increments
	// it on the first park since the last flush (from its owning shard's
	// goroutine, hence the atomic); Flush resets it at the barrier. It is
	// both the Flush fast path and the Pending oracle a ShardGroup uses to
	// widen solo rounds.
	dirtyPorts atomic.Int64
	// flushes/elidedFlushes count barrier flushes that did work vs. were
	// skipped because no outbox held packets. Both are a pure function of
	// the partition and the epoch protocol, never of worker scheduling.
	flushes       uint64
	elidedFlushes uint64
}

// NewShardExchange returns an empty exchange.
func NewShardExchange() *ShardExchange { return &ShardExchange{} }

// Lookahead returns the minimum one-way delay over all cross-shard links
// registered so far (0 if none): the widest epoch a ShardGroup over this
// partition can safely use.
func (x *ShardExchange) Lookahead() sim.Time { return x.minDelay }

// Ports returns the number of registered mailbox directions (two per
// cross-shard link).
func (x *ShardExchange) Ports() int { return len(x.ports) }

// Pending reports whether any outbox currently holds parked traffic.
// Install it as the group's pending oracle (ShardGroup.SetExchangePending):
// it is safe to call from the one shard running in a solo round, and after
// a Flush it reads false until the next transmission is parked.
func (x *ShardExchange) Pending() bool { return x.dirtyPorts.Load() != 0 }

// Flushes returns how many barrier flushes migrated at least one packet;
// ElidedFlushes how many were skipped outright because every outbox was
// empty. Their sum is the number of Flush calls.
func (x *ShardExchange) Flushes() uint64 { return x.flushes }

// ElidedFlushes returns the number of Flush calls skipped by the dirty-flag
// fast path.
func (x *ShardExchange) ElidedFlushes() uint64 { return x.elidedFlushes }

// Connect creates a duplex link between nodes driven by the given engines.
// When the engines are the same shard it degrades to a plain Connect — a
// mailbox would defer same-engine deliveries to the next barrier and
// mis-time them — so callers can wire a partition without caring which
// pairs happened to land on the same shard. Cross-shard links must have a
// positive propagation delay: a zero-delay cross link would make the
// group's lookahead zero.
func (x *ShardExchange) Connect(ea, eb *sim.Engine, a, b Node, cfg LinkConfig) *Link {
	if ea == nil || eb == nil {
		panic("netsim: ShardExchange.Connect with nil engine")
	}
	if ea == eb {
		return Connect(ea, a, b, cfg)
	}
	if cfg.Delay < 1 {
		panic(fmt.Sprintf("netsim: cross-shard link %s--%s needs a positive delay", a.Name(), b.Name()))
	}
	fc := FusedLinks()
	l := &Link{cfg: cfg}
	l.a = &Iface{engine: ea, node: a, link: l, fusedCfg: fc}
	l.b = &Iface{engine: eb, node: b, link: l, fusedCfg: fc}
	l.a.peer = l.b
	l.b.peer = l.a
	l.a.txDoneFn = l.a.txDone
	l.b.txDoneFn = l.b.txDone

	// One mailbox per direction, delivering into the far side's engine.
	pa := &xPort{owner: x, recv: eb, dst: l.b}
	pb := &xPort{owner: x, recv: ea, dst: l.a}
	pa.deliverFn = pa.deliver
	pb.deliverFn = pb.deliver
	l.a.xport = pa
	l.b.xport = pb
	x.ports = append(x.ports, pa, pb)
	if x.minDelay == 0 || cfg.Delay < x.minDelay {
		x.minDelay = cfg.Delay
	}

	if at, ok := a.(IfaceAttacher); ok {
		at.AttachIface(l.a)
	}
	if bt, ok := b.(IfaceAttacher); ok {
		bt.AttachIface(l.b)
	}
	return l
}

// Flush migrates every outbox entry buffered since the previous barrier
// into the receiving engines. It must run with all shards parked (install
// it via ShardGroup.SetExchange); it is the only code that touches both
// sides of a port. Steady state is allocation-free: outboxes, pending
// FIFOs, and the receiving engines' event slots are all recycled.
func (x *ShardExchange) Flush() {
	if x.dirtyPorts.Load() == 0 {
		x.elidedFlushes++
		return
	}
	x.flushes++
	x.dirtyPorts.Store(0)
	for _, p := range x.ports {
		if !p.dirty {
			continue
		}
		p.dirty = false
		for i := range p.outbox {
			e := &p.outbox[i]
			p.pending = append(p.pending, e.pkt)
			p.recv.At(e.at, p.deliverFn)
			e.pkt = nil
		}
		p.outbox = p.outbox[:0]
	}
}

// xEntry is one finished cross-shard transmission awaiting the barrier.
type xEntry struct {
	at  sim.Time // arrival instant at the far end (send time + delay)
	pkt *inet.Packet
}

// xPort is one direction of a cross-shard link: an outbox filled by the
// sending shard during its epoch and a pending FIFO consumed by arrival
// events on the receiving engine. Arrival instants are nondecreasing per
// port (transmissions finish in time order and the delay is constant), so
// the FIFO head is always the packet whose arrival event is firing —
// exactly the invariant Iface.deliver relies on for in-shard links.
type xPort struct {
	owner     *ShardExchange
	recv      *sim.Engine
	dst       *Iface // receiving interface (counts the delivery)
	outbox    []xEntry
	pending   []*inet.Packet
	deliverFn sim.Handler
	// dirty marks a non-empty outbox. Owned by the sending shard between
	// barriers (set in park), read and cleared by Flush at the barrier.
	dirty bool
}

// park buffers one finished transmission for the next barrier flush and
// maintains the exchange's dirty accounting. It runs on the sending
// shard's goroutine mid-epoch; the 0→1 transition is the only point that
// touches shared state, through owner.dirtyPorts.
func (p *xPort) park(at sim.Time, pkt *inet.Packet) {
	if !p.dirty {
		p.dirty = true
		p.owner.dirtyPorts.Add(1)
	}
	p.outbox = append(p.outbox, xEntry{at: at, pkt: pkt})
}

// deliver fires on the receiving engine at the arrival instant and hands
// the oldest pending packet to the destination node.
func (p *xPort) deliver() {
	pkt := p.pending[0]
	copy(p.pending, p.pending[1:])
	p.pending[len(p.pending)-1] = nil
	p.pending = p.pending[:len(p.pending)-1]
	p.dst.delivers++
	p.dst.node.HandlePacket(p.dst, pkt)
}
