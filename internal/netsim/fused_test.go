package netsim

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// arrival is one delivery observed at a receiver: when, which packet, in
// what order (the slice index).
type arrival struct {
	at sim.Time
	id uint64
}

// TestFusedMatchesClassicDifferential is the seeded differential property
// test for the analytic transmit path: random bandwidth/delay/queue-limit/
// byte-limit configurations carry identical random burst patterns through a
// fused and a classic link wired side by side on one engine, and every
// observable — delivery times and order, drop decisions, and the
// Sent/Dropped/QueueLen/QueueBytes counters read at random mid-run instants
// — must match exactly. Runs under -race in CI.
func TestFusedMatchesClassicDifferential(t *testing.T) {
	bands := []int64{0, 125_000, 1_000_000, 3_000_000, 9_600_000, 1_000_000_000}
	delays := []sim.Time{0, sim.Millisecond, 3 * sim.Millisecond, 7 * sim.Millisecond}
	qlims := []int{0, 1, 2, 5, 20}
	blims := []int{0, 500, 2000, 5000}

	for trial := 0; trial < 60; trial++ {
		rng := sim.NewRNG(int64(trial)*7919 + 1)
		cfg := LinkConfig{
			BandwidthBPS:    bands[rng.Intn(len(bands))],
			Delay:           delays[rng.Intn(len(delays))],
			QueueLimit:      qlims[rng.Intn(len(qlims))],
			QueueLimitBytes: blims[rng.Intn(len(blims))],
		}

		e := sim.NewEngine()
		a := NewHost("a", inet.Addr{Net: 1, Host: 1})
		b := NewHost("b", inet.Addr{Net: 2, Host: 1})
		c := NewHost("c", inet.Addr{Net: 3, Host: 1})
		d := NewHost("d", inet.Addr{Net: 4, Host: 1})
		prev := SetFusedLinks(false)
		lc := Connect(e, a, b, cfg) // classic
		SetFusedLinks(true)
		lf := Connect(e, c, d, cfg) // fused
		SetFusedLinks(prev)

		var arrC, arrF []arrival
		b.Receive = func(pkt *inet.Packet) { arrC = append(arrC, arrival{e.Now(), pkt.ID}) }
		d.Receive = func(pkt *inet.Packet) { arrF = append(arrF, arrival{e.Now(), pkt.ID}) }
		var dropC, dropF []uint64
		lc.A().DropHook = func(pkt *inet.Packet) { dropC = append(dropC, pkt.ID) }
		lf.A().DropHook = func(pkt *inet.Packet) { dropF = append(dropF, pkt.ID) }

		// Random bursts: the same (id, size) sequence enters both links in
		// the same event, so any divergence is the link's doing.
		var nextID uint64
		bursts := 4 + rng.Intn(16)
		for k := 0; k < bursts; k++ {
			at := sim.Time(rng.Intn(40)) * sim.Millisecond
			n := 1 + rng.Intn(6)
			sizes := make([]int, n)
			for j := range sizes {
				sizes[j] = 40 + rng.Intn(1461)
			}
			e.At(at, func() {
				for _, size := range sizes {
					nextID++
					pc := newPkt(a.Addr(), b.Addr(), size)
					pc.ID = nextID
					pf := newPkt(c.Addr(), d.Addr(), size)
					pf.ID = nextID
					a.Send(pc)
					c.Send(pf)
				}
			})
		}
		// Random mid-run readers: the lazily drained ring must reconstruct
		// the classic counters at every instant, not just at the end.
		for k := 0; k < 8; k++ {
			at := sim.Time(rng.Intn(45)) * sim.Millisecond
			e.At(at, func() {
				ic, ifd := lc.A(), lf.A()
				if ic.Sent() != ifd.Sent() || ic.Dropped() != ifd.Dropped() ||
					ic.QueueLen() != ifd.QueueLen() || ic.QueueBytes() != ifd.QueueBytes() {
					t.Errorf("trial %d cfg %+v at %v: classic sent=%d dropped=%d qlen=%d qbytes=%d, fused sent=%d dropped=%d qlen=%d qbytes=%d",
						trial, cfg, e.Now(),
						ic.Sent(), ic.Dropped(), ic.QueueLen(), ic.QueueBytes(),
						ifd.Sent(), ifd.Dropped(), ifd.QueueLen(), ifd.QueueBytes())
				}
			})
		}

		if err := e.RunAll(); err != nil {
			t.Fatalf("trial %d: RunAll: %v", trial, err)
		}

		if len(arrC) != len(arrF) {
			t.Fatalf("trial %d cfg %+v: %d classic deliveries vs %d fused", trial, cfg, len(arrC), len(arrF))
		}
		for j := range arrC {
			if arrC[j] != arrF[j] {
				t.Fatalf("trial %d cfg %+v: delivery %d: classic %+v, fused %+v", trial, cfg, j, arrC[j], arrF[j])
			}
		}
		if len(dropC) != len(dropF) {
			t.Fatalf("trial %d cfg %+v: %d classic drops vs %d fused", trial, cfg, len(dropC), len(dropF))
		}
		for j := range dropC {
			if dropC[j] != dropF[j] {
				t.Fatalf("trial %d cfg %+v: drop %d: classic id %d, fused id %d", trial, cfg, j, dropC[j], dropF[j])
			}
		}
		ic, ifd := lc.A(), lf.A()
		if ic.Sent() != ifd.Sent() || ic.Dropped() != ifd.Dropped() ||
			lc.B().Delivers() != lf.B().Delivers() ||
			ic.QueueLen() != ifd.QueueLen() || ic.QueueBytes() != ifd.QueueBytes() {
			t.Fatalf("trial %d cfg %+v: final counters diverge: classic sent=%d dropped=%d delivers=%d, fused sent=%d dropped=%d delivers=%d",
				trial, cfg, ic.Sent(), ic.Dropped(), lc.B().Delivers(),
				ifd.Sent(), ifd.Dropped(), lf.B().Delivers())
		}
	}
}

// TestFusedHalvesWiredHopEvents pins the tentpole's event economy: the same
// burst over a fused link must cost exactly one scheduler event per packet
// where the classic path costs two (txDone + deliver).
func TestFusedHalvesWiredHopEvents(t *testing.T) {
	run := func(fused bool) uint64 {
		e := sim.NewEngine()
		a := NewHost("a", inet.Addr{Net: 1, Host: 1})
		b := NewHost("b", inet.Addr{Net: 2, Host: 1})
		prev := SetFusedLinks(fused)
		Connect(e, a, b, LinkConfig{BandwidthBPS: 10_000_000, Delay: sim.Millisecond})
		SetFusedLinks(prev)
		b.Receive = func(pkt *inet.Packet) {}
		const n = 100
		e.At(0, func() {
			for i := 0; i < n; i++ {
				a.Send(newPkt(a.Addr(), b.Addr(), 1000))
			}
		})
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		return e.Processed()
	}
	classic, fused := run(false), run(true)
	// 1 burst event + 2 events/packet classic, 1 event/packet fused.
	if classic != 201 || fused != 101 {
		t.Fatalf("events: classic=%d (want 201), fused=%d (want 101)", classic, fused)
	}
}

// benchWiredHop measures one pool-allocated UDP packet crossing a wired
// hop end to end — send, serialization, propagation, delivery, release,
// reap — on the selected transmit path. The CI gate pins both variants at
// 0 allocs/op exactly; their ns/op ratio is the fused path's per-hop win.
func benchWiredHop(b *testing.B, fused bool) {
	prev := SetFusedLinks(fused)
	defer SetFusedLinks(prev)
	engine := sim.NewEngine()
	topo := NewTopology(engine)
	src := NewHost("a", inet.Addr{Net: 1, Host: 1})
	dst := NewHost("b", inet.Addr{Net: 2, Host: 1})
	topo.Connect(src, dst, LinkConfig{BandwidthBPS: 10e6, Delay: sim.Millisecond})
	dst.Receive = func(pkt *inet.Packet) { topo.ReleasePacket(pkt) }
	send := func() {
		pkt := topo.AllocPacket()
		pkt.Src = src.Addr()
		pkt.Dst = dst.Addr()
		pkt.Proto = inet.ProtoUDP
		pkt.Size = 160
		src.Send(pkt)
		if err := engine.RunAll(); err != nil {
			b.Fatalf("engine: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		send()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
}

func BenchmarkWiredHopFused(b *testing.B)   { benchWiredHop(b, true) }
func BenchmarkWiredHopClassic(b *testing.B) { benchWiredHop(b, false) }

// TestImpairDiscardReleasesToPool pins the fix for the pooled-packet leak on
// the Impair discard path: a discarded packet reaches the DiscardHook, and a
// topology that recycles there gets every packet back in its pool.
func TestImpairDiscardReleasesToPool(t *testing.T) {
	e := sim.NewEngine()
	topo := NewTopology(e)
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	l := topo.Connect(a, b, LinkConfig{Delay: sim.Millisecond})
	l.A().Impair = func(pkt *inet.Packet) bool { return pkt.ID%2 == 1 } // discard odd IDs
	var discards int
	topo.HookDiscards(func(pkt *inet.Packet) {
		discards++
		topo.ReleasePacket(pkt)
	})
	b.Receive = func(pkt *inet.Packet) { topo.ReleasePacket(pkt) }

	const n = 50
	for i := 0; i < n; i++ {
		pkt := topo.AllocPacket()
		pkt.Src, pkt.Dst, pkt.Proto, pkt.Size = a.Addr(), b.Addr(), inet.ProtoUDP, 100
		pkt.ID = topo.NewPacketID()
		a.Send(pkt)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if discards != n/2 {
		t.Fatalf("DiscardHook saw %d packets, want %d", discards, n/2)
	}
	// Every packet — delivered or discarded — must be back in the pool.
	if got := topo.pool.Len(); got != n {
		t.Fatalf("pool recovered %d of %d packets; the discard path leaks", got, n)
	}
}

// TestFusedFallsBackUnderImpair pins the mode commit: a link whose Impair
// hook exists at first Send stays on the classic path even when fusion is
// the process default, and behaves identically to a plain classic link.
func TestFusedFallsBackUnderImpair(t *testing.T) {
	if !FusedLinks() {
		t.Skip("fusion disabled via NETSIM_FUSED=0")
	}
	e := sim.NewEngine()
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	l := Connect(e, a, b, LinkConfig{BandwidthBPS: 1_000_000, Delay: sim.Millisecond})
	l.A().Impair = func(pkt *inet.Packet) bool { return false } // present but transparent
	var got int
	b.Receive = func(pkt *inet.Packet) { got++ }
	for i := 0; i < 3; i++ {
		a.Send(newPkt(a.Addr(), b.Addr(), 500))
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if l.A().mode != modeClassic {
		t.Fatalf("mode = %d, want classic fallback under Impair", l.A().mode)
	}
	if got != 3 || l.A().Sent() != 3 {
		t.Fatalf("delivered %d sent %d, want 3/3", got, l.A().Sent())
	}
}
