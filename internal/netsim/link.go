package netsim

import (
	"fmt"

	"repro/internal/inet"
	"repro/internal/sim"
)

// LinkConfig describes one duplex point-to-point link. The same parameters
// apply to both directions.
type LinkConfig struct {
	// BandwidthBPS is the line rate in bits per second. Zero means
	// infinitely fast (no serialization delay).
	BandwidthBPS int64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// QueueLimit is the droptail queue capacity in packets (not counting
	// the packet in transmission). Zero selects DefaultQueueLimit.
	QueueLimit int
	// QueueLimitBytes additionally bounds the queue in bytes (ns-2-style
	// byte-mode queues). Zero means no byte bound.
	QueueLimitBytes int
}

// DefaultQueueLimit is the droptail capacity used when LinkConfig leaves
// QueueLimit zero. It is large enough that the wired links in the thesis
// topology never tail-drop; the interesting buffering happens in the
// handover buffers, not the link queues.
const DefaultQueueLimit = 1000

// Link is a duplex point-to-point link between two nodes.
type Link struct {
	cfg LinkConfig
	a   *Iface
	b   *Iface
}

// Config returns the link parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// A returns the interface on the first node passed to Connect.
func (l *Link) A() *Iface { return l.a }

// B returns the interface on the second node passed to Connect.
func (l *Link) B() *Iface { return l.b }

// Iface is one endpoint of a duplex link. It owns the droptail transmit
// queue for its direction.
type Iface struct {
	engine *sim.Engine
	node   Node
	peer   *Iface
	link   *Link

	queue       []*inet.Packet
	queuedBytes int
	busy        bool
	sent        uint64
	dropped     uint64
	delivers    uint64

	// Zero-alloc transmit state: txPkt is the packet currently
	// serializing, inflight the FIFO of packets propagating on the wire
	// (per-direction delay is constant, so deliveries complete in
	// scheduling order), and txDoneFn/deliverFn the handlers pre-bound
	// once in Connect so the hot path schedules no fresh closures.
	txPkt     *inet.Packet
	inflight  []*inet.Packet
	txDoneFn  sim.Handler
	deliverFn sim.Handler

	// xport, when non-nil, marks this direction as crossing a shard
	// boundary: finished transmissions park in the port's outbox for the
	// next barrier flush instead of scheduling a same-engine delivery.
	// See ShardExchange.
	xport *xPort

	// DropHook, if set, observes every tail drop on this interface.
	DropHook func(pkt *inet.Packet)
	// Impair, if set, is consulted before each transmission; returning
	// true silently discards the packet. Used for failure injection in
	// tests and robustness experiments.
	Impair func(pkt *inet.Packet) bool
}

// Node returns the node this interface belongs to.
func (i *Iface) Node() Node { return i.node }

// Peer returns the node on the far end of the link.
func (i *Iface) Peer() Node { return i.peer.node }

// PeerIface returns the interface on the far end of the link.
func (i *Iface) PeerIface() *Iface { return i.peer }

// Link returns the link this interface belongs to.
func (i *Iface) Link() *Link { return i.link }

// Sent returns the number of packets fully transmitted.
func (i *Iface) Sent() uint64 { return i.sent }

// Dropped returns the number of tail-dropped packets.
func (i *Iface) Dropped() uint64 { return i.dropped }

// QueueLen returns the number of packets waiting behind the one in
// transmission.
func (i *Iface) QueueLen() int { return len(i.queue) }

// QueueBytes returns the bytes waiting behind the one in transmission.
func (i *Iface) QueueBytes() int { return i.queuedBytes }

// String identifies the interface as "node->peer".
func (i *Iface) String() string {
	return fmt.Sprintf("%s->%s", i.node.Name(), i.peer.node.Name())
}

// Send queues pkt for transmission toward the peer. If the transmitter is
// idle the packet starts serializing immediately; otherwise it joins the
// droptail queue and is dropped if the queue is full.
func (i *Iface) Send(pkt *inet.Packet) {
	if pkt == nil {
		panic("netsim: Send(nil)")
	}
	if i.Impair != nil && i.Impair(pkt) {
		return
	}
	if i.busy {
		limit := i.link.cfg.QueueLimit
		if limit == 0 {
			limit = DefaultQueueLimit
		}
		byteLimit := i.link.cfg.QueueLimitBytes
		if len(i.queue) >= limit || (byteLimit > 0 && i.queuedBytes+pkt.Size > byteLimit) {
			i.dropped++
			if i.DropHook != nil {
				i.DropHook(pkt)
			}
			return
		}
		i.queue = append(i.queue, pkt)
		i.queuedBytes += pkt.Size
		return
	}
	i.transmit(pkt)
}

// transmit serializes pkt onto the wire and schedules its delivery.
func (i *Iface) transmit(pkt *inet.Packet) {
	i.busy = true
	i.txPkt = pkt
	var txTime sim.Time
	if bps := i.link.cfg.BandwidthBPS; bps > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / bps)
	}
	// Transmission completes after the serialization time; the packet
	// arrives one propagation delay later (txDone → deliver).
	i.engine.Schedule(txTime, i.txDoneFn)
}

// txDone fires when the current packet finishes serializing: it enters the
// propagation FIFO and the next queued packet starts transmitting.
func (i *Iface) txDone() {
	i.sent++
	if i.xport != nil {
		i.xport.park(i.engine.Now()+i.link.cfg.Delay, i.txPkt)
	} else {
		i.inflight = append(i.inflight, i.txPkt)
		i.engine.Schedule(i.link.cfg.Delay, i.deliverFn)
	}
	if len(i.queue) > 0 {
		next := i.queue[0]
		copy(i.queue, i.queue[1:])
		i.queue = i.queue[:len(i.queue)-1]
		i.queuedBytes -= next.Size
		i.busy = false
		i.transmit(next)
	} else {
		i.busy = false
	}
}

// deliver fires one propagation delay after txDone and hands the oldest
// in-flight packet to the peer. The constant per-direction delay
// guarantees deliveries complete in the same order transmissions finished,
// so the FIFO head is always the arriving packet.
func (i *Iface) deliver() {
	pkt := i.inflight[0]
	copy(i.inflight, i.inflight[1:])
	i.inflight[len(i.inflight)-1] = nil
	i.inflight = i.inflight[:len(i.inflight)-1]
	i.peer.delivers++
	i.peer.node.HandlePacket(i.peer, pkt)
}

// Connect creates a duplex link between two nodes and returns it. Nodes
// that implement the internal attachIface hook (hosts, routers) are told
// about their new interface.
func Connect(engine *sim.Engine, a, b Node, cfg LinkConfig) *Link {
	if engine == nil {
		panic("netsim: Connect with nil engine")
	}
	l := &Link{cfg: cfg}
	l.a = &Iface{engine: engine, node: a, link: l}
	l.b = &Iface{engine: engine, node: b, link: l}
	l.a.peer = l.b
	l.b.peer = l.a
	// Bind the transmit handlers once so the per-packet hot path schedules
	// pre-existing closures instead of allocating new ones.
	l.a.txDoneFn, l.a.deliverFn = l.a.txDone, l.a.deliver
	l.b.txDoneFn, l.b.deliverFn = l.b.txDone, l.b.deliver
	if at, ok := a.(IfaceAttacher); ok {
		at.AttachIface(l.a)
	}
	if bt, ok := b.(IfaceAttacher); ok {
		bt.AttachIface(l.b)
	}
	return l
}
