package netsim

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/inet"
	"repro/internal/sim"
)

// LinkConfig describes one duplex point-to-point link. The same parameters
// apply to both directions.
type LinkConfig struct {
	// BandwidthBPS is the line rate in bits per second. Zero means
	// infinitely fast (no serialization delay).
	BandwidthBPS int64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// QueueLimit is the droptail queue capacity in packets (not counting
	// the packet in transmission). Zero selects DefaultQueueLimit.
	QueueLimit int
	// QueueLimitBytes additionally bounds the queue in bytes (ns-2-style
	// byte-mode queues). Zero means no byte bound.
	QueueLimitBytes int
}

// DefaultQueueLimit is the droptail capacity used when LinkConfig leaves
// QueueLimit zero. It is large enough that the wired links in the thesis
// topology never tail-drop; the interesting buffering happens in the
// handover buffers, not the link queues.
const DefaultQueueLimit = 1000

// fusedLinksDefault selects the analytic ("fused") transmit path for links
// wired from now on: one pre-pinned delivery event per packet instead of
// the classic txDone-then-deliver pair (DESIGN.md §12). On by default;
// setting NETSIM_FUSED=0 in the environment starts the process with
// classic links (CI uses this to run the figure suite in both modes).
var fusedLinksDefault atomic.Bool

func init() { fusedLinksDefault.Store(os.Getenv("NETSIM_FUSED") != "0") }

// SetFusedLinks selects the transmit path for links wired from now on and
// returns the previous setting. An Iface latches the setting at Connect
// time, so a test can build a fused and a classic link side by side on one
// engine by toggling around the Connect calls.
func SetFusedLinks(on bool) bool { return fusedLinksDefault.Swap(on) }

// FusedLinks reports whether links wired from now on use the analytic
// transmit path.
func FusedLinks() bool { return fusedLinksDefault.Load() }

// linkMode is an Iface's committed transmit path.
type linkMode uint8

const (
	// modeUnset: not committed yet; the first Send decides.
	modeUnset linkMode = iota
	// modeClassic: two scheduler events per packet (txDone, deliver).
	modeClassic
	// modeFused: analytic departures, one pre-pinned delivery event.
	modeFused
)

// txEntry is one analytically computed departure pending in a fused
// Iface's ring: enough state to replay, at any later read, exactly the
// counter and occupancy updates the classic txDone event would have
// applied at dep — including which side of an equal-instant tie the
// txDone would have fired on (the phantom key, see drainRing).
type txEntry struct {
	dep  sim.Time // serialization end; the classic txDone instant
	size int
	// Phantom txDone ordering key at instant dep. pvins is the instant
	// the classic path would have inserted the txDone (serialization
	// start); (pvins2, pvseq2) the inserting context — the Send-time
	// firing event for a busy-period root, the predecessor's
	// (pvins, pseq) down a backlog chain; pseq the sequence slot the
	// insertion would have consumed (the root's, propagated down the
	// chain).
	pvins  sim.Time
	pvins2 sim.Time
	pvseq2 uint64
	pseq   uint64
}

// Link is a duplex point-to-point link between two nodes.
type Link struct {
	cfg LinkConfig
	a   *Iface
	b   *Iface
}

// Config returns the link parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// A returns the interface on the first node passed to Connect.
func (l *Link) A() *Iface { return l.a }

// B returns the interface on the second node passed to Connect.
func (l *Link) B() *Iface { return l.b }

// Iface is one endpoint of a duplex link. It owns the droptail transmit
// queue for its direction.
type Iface struct {
	engine *sim.Engine
	node   Node
	peer   *Iface
	link   *Link

	queue       []*inet.Packet
	queuedBytes int
	busy        bool
	sent        uint64
	dropped     uint64
	delivers    uint64

	// Zero-alloc transmit state: txPkt is the packet currently
	// serializing, inflight the FIFO of packets propagating on the wire
	// (per-direction delay is constant, so deliveries complete in
	// scheduling order), and txDoneFn/deliverFn the handlers pre-bound
	// once in Connect so the hot path schedules no fresh closures.
	txPkt     *inet.Packet
	inflight  []*inet.Packet
	txDoneFn  sim.Handler
	deliverFn sim.Handler

	// xport, when non-nil, marks this direction as crossing a shard
	// boundary: finished transmissions park in the port's outbox for the
	// next barrier flush instead of scheduling a same-engine delivery.
	// See ShardExchange.
	xport *xPort

	// Analytic ("fused") transmit state — see DESIGN.md §12. fusedCfg is
	// latched from the package setting at Connect; mode commits at the
	// first Send (classic when an Impair hook is installed by then).
	// busyUntil is the per-direction serialization clock, ring the FIFO
	// of departures not yet folded into the counters (drained lazily),
	// and ringBytes the byte sum of the live ring entries.
	fusedCfg  bool
	mode      linkMode
	busyUntil sim.Time
	ring      []txEntry
	ringHead  int
	ringBytes int

	// DropHook, if set, observes every tail drop on this interface.
	DropHook func(pkt *inet.Packet)
	// Impair, if set, is consulted before each transmission; returning
	// true silently discards the packet. Used for failure injection in
	// tests and robustness experiments.
	Impair func(pkt *inet.Packet) bool
	// DiscardHook, if set, observes every packet an Impair hook
	// discarded, so owners can reclaim pooled packets that would
	// otherwise leak (see Topology.HookDiscards).
	DiscardHook func(pkt *inet.Packet)
}

// Node returns the node this interface belongs to.
func (i *Iface) Node() Node { return i.node }

// Peer returns the node on the far end of the link.
func (i *Iface) Peer() Node { return i.peer.node }

// PeerIface returns the interface on the far end of the link.
func (i *Iface) PeerIface() *Iface { return i.peer }

// Link returns the link this interface belongs to.
func (i *Iface) Link() *Link { return i.link }

// Sent returns the number of packets fully transmitted.
func (i *Iface) Sent() uint64 {
	i.drainRing()
	return i.sent
}

// Dropped returns the number of tail-dropped packets.
func (i *Iface) Dropped() uint64 { return i.dropped }

// Delivers returns the number of packets this interface handed to its
// node — the receive-side counterpart of the peer's Sent.
func (i *Iface) Delivers() uint64 { return i.delivers }

// QueueLen returns the number of packets waiting behind the one in
// transmission.
func (i *Iface) QueueLen() int {
	i.drainRing()
	if m := len(i.ring) - i.ringHead; m > 0 {
		return m - 1
	}
	return len(i.queue)
}

// QueueBytes returns the bytes waiting behind the one in transmission.
func (i *Iface) QueueBytes() int {
	i.drainRing()
	if m := len(i.ring) - i.ringHead; m > 0 {
		return i.ringBytes - i.ring[i.ringHead].size
	}
	return i.queuedBytes
}

// String identifies the interface as "node->peer".
func (i *Iface) String() string {
	return fmt.Sprintf("%s->%s", i.node.Name(), i.peer.node.Name())
}

// Send queues pkt for transmission toward the peer. If the transmitter is
// idle the packet starts serializing immediately; otherwise it joins the
// droptail queue and is dropped if the queue is full.
func (i *Iface) Send(pkt *inet.Packet) {
	if pkt == nil {
		panic("netsim: Send(nil)")
	}
	if i.Impair != nil && i.Impair(pkt) {
		if i.DiscardHook != nil {
			i.DiscardHook(pkt)
		}
		return
	}
	if i.mode == modeUnset {
		// Commit the transmit path on first use. Links with an Impair
		// hook by then keep the classic two-event path; a hook attached
		// after the commit is still consulted at Send time above, in the
		// identical position on both paths.
		if i.fusedCfg && i.Impair == nil {
			i.mode = modeFused
		} else {
			i.mode = modeClassic
		}
	}
	if i.mode == modeFused {
		i.sendFused(pkt)
		return
	}
	if i.busy {
		limit := i.link.cfg.QueueLimit
		if limit == 0 {
			limit = DefaultQueueLimit
		}
		byteLimit := i.link.cfg.QueueLimitBytes
		if len(i.queue) >= limit || (byteLimit > 0 && i.queuedBytes+pkt.Size > byteLimit) {
			i.dropped++
			if i.DropHook != nil {
				i.DropHook(pkt)
			}
			return
		}
		i.queue = append(i.queue, pkt)
		i.queuedBytes += pkt.Size
		return
	}
	i.transmit(pkt)
}

// transmit serializes pkt onto the wire and schedules its delivery.
func (i *Iface) transmit(pkt *inet.Packet) {
	i.busy = true
	i.txPkt = pkt
	var txTime sim.Time
	if bps := i.link.cfg.BandwidthBPS; bps > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / bps)
	}
	// Transmission completes after the serialization time; the packet
	// arrives one propagation delay later (txDone → deliver).
	i.engine.Schedule(txTime, i.txDoneFn)
}

// txDone fires when the current packet finishes serializing: it enters the
// propagation FIFO and the next queued packet starts transmitting.
func (i *Iface) txDone() {
	i.sent++
	if i.xport != nil {
		i.xport.park(i.engine.Now()+i.link.cfg.Delay, i.txPkt)
	} else {
		i.inflight = append(i.inflight, i.txPkt)
		i.engine.Schedule(i.link.cfg.Delay, i.deliverFn)
	}
	if len(i.queue) > 0 {
		next := i.queue[0]
		copy(i.queue, i.queue[1:])
		i.queue = i.queue[:len(i.queue)-1]
		i.queuedBytes -= next.Size
		i.busy = false
		i.transmit(next)
	} else {
		i.busy = false
	}
}

// deliver fires one propagation delay after txDone and hands the oldest
// in-flight packet to the peer. The constant per-direction delay
// guarantees deliveries complete in the same order transmissions finished,
// so the FIFO head is always the arriving packet.
func (i *Iface) deliver() {
	pkt := i.inflight[0]
	copy(i.inflight, i.inflight[1:])
	i.inflight[len(i.inflight)-1] = nil
	i.inflight = i.inflight[:len(i.inflight)-1]
	i.peer.delivers++
	i.peer.node.HandlePacket(i.peer, pkt)
}

// sendFused is the analytic transmit path: no txDone event is scheduled.
// The departure instant follows from the per-direction busyUntil clock,
// the droptail/byte-limit decision from the lazily drained departure
// ring, and the single delivery event is pinned (sim.AtPinned) exactly
// where the classic txDone-then-deliver chain would have inserted it, so
// equal-instant ordering — and therefore every simulation output — is
// identical to the classic path. See DESIGN.md §12.
func (i *Iface) sendFused(pkt *inet.Packet) {
	i.drainRing()
	m := len(i.ring) - i.ringHead
	if m > 0 {
		// Transmitter busy: the ring head is the packet serializing, the
		// rest the queue — apply droptail exactly as the classic path.
		limit := i.link.cfg.QueueLimit
		if limit == 0 {
			limit = DefaultQueueLimit
		}
		byteLimit := i.link.cfg.QueueLimitBytes
		if m-1 >= limit || (byteLimit > 0 && i.ringBytes-i.ring[i.ringHead].size+pkt.Size > byteLimit) {
			i.dropped++
			if i.DropHook != nil {
				i.DropHook(pkt)
			}
			return
		}
	}
	e := i.engine
	now := e.Now()
	var txTime sim.Time
	if bps := i.link.cfg.BandwidthBPS; bps > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / bps)
	}
	var ent txEntry
	start := now
	if m > 0 {
		// Backlogged: serialization starts when the predecessor departs,
		// and the phantom txDone inherits the chain's insertion lineage
		// (classic inserts it while the predecessor's txDone is firing).
		prev := &i.ring[len(i.ring)-1]
		start = i.busyUntil
		ent.pvins2, ent.pvseq2, ent.pseq = prev.pvins, prev.pseq, prev.pseq
	} else if fv, _, _, fseq, firing := e.FiringKey(); firing {
		ent.pvins2, ent.pvseq2 = fv, fseq
		ent.pseq = e.NextSeq()
	} else {
		ent.pvins2, ent.pvseq2 = now, e.NextSeq()
		ent.pseq = e.NextSeq()
	}
	dep := start + txTime
	ent.dep, ent.size, ent.pvins = dep, pkt.Size, start
	i.busyUntil = dep
	i.ring = append(i.ring, ent)
	i.ringBytes += pkt.Size
	if i.xport != nil {
		// Cross-shard: park at the analytically known arrival right
		// away. The entry reaches the mailbox one barrier earlier than
		// the classic path would have parked it, but the arrival instant
		// is identical and still at least one lookahead ahead of the
		// sending shard's clock, so the epoch protocol stays sound.
		i.xport.park(dep+i.link.cfg.Delay, pkt)
		return
	}
	i.inflight = append(i.inflight, pkt)
	e.AtPinned(dep+i.link.cfg.Delay, dep, start, ent.pseq, i.deliverFn)
}

// drainRing retires every pending departure the classic path would have
// completed by now, folding each into the sent counter and the occupancy
// accounting — late, but with identical visible values at every read
// point. Departure instants themselves never depend on the drain (only
// busyUntil does, and drains don't touch it).
func (i *Iface) drainRing() {
	h, n := i.ringHead, len(i.ring)
	if h == n {
		return
	}
	now := i.engine.Now()
	for h < n {
		ent := &i.ring[h]
		if ent.dep > now || (ent.dep == now && !i.phantomFired(ent)) {
			break
		}
		i.sent++
		i.ringBytes -= ent.size
		h++
	}
	// Reclaim ring storage: reset when empty, compact when the dead
	// prefix dominates, so a permanently busy link stays O(backlog).
	if h == len(i.ring) {
		i.ring = i.ring[:0]
		h = 0
	} else if h >= 64 && h*2 >= len(i.ring) {
		kept := copy(i.ring, i.ring[h:])
		i.ring = i.ring[:kept]
		h = 0
	}
	i.ringHead = h
}

// phantomFired reports whether the classic txDone for ent — an event at
// the current instant with key (now, pvins, pvins2, pvseq2, pseq) — would
// have fired before the event whose handler is currently running. With no
// handler running (a read between engine runs) the txDone has fired: Run
// fires events at the horizon instant before returning.
func (i *Iface) phantomFired(ent *txEntry) bool {
	fv, fv2, fs2, fseq, firing := i.engine.FiringKey()
	if !firing {
		return true
	}
	if ent.pvins != fv {
		return ent.pvins < fv
	}
	if ent.pvins2 != fv2 {
		return ent.pvins2 < fv2
	}
	if ent.pvseq2 != fs2 {
		return ent.pvseq2 < fs2
	}
	return ent.pseq < fseq
}

// Connect creates a duplex link between two nodes and returns it. Nodes
// that implement the internal attachIface hook (hosts, routers) are told
// about their new interface.
func Connect(engine *sim.Engine, a, b Node, cfg LinkConfig) *Link {
	if engine == nil {
		panic("netsim: Connect with nil engine")
	}
	fc := FusedLinks()
	l := &Link{cfg: cfg}
	l.a = &Iface{engine: engine, node: a, link: l, fusedCfg: fc}
	l.b = &Iface{engine: engine, node: b, link: l, fusedCfg: fc}
	l.a.peer = l.b
	l.b.peer = l.a
	// Bind the transmit handlers once so the per-packet hot path schedules
	// pre-existing closures instead of allocating new ones.
	l.a.txDoneFn, l.a.deliverFn = l.a.txDone, l.a.deliver
	l.b.txDoneFn, l.b.deliverFn = l.b.txDone, l.b.deliver
	if at, ok := a.(IfaceAttacher); ok {
		at.AttachIface(l.a)
	}
	if bt, ok := b.(IfaceAttacher); ok {
		bt.AttachIface(l.b)
	}
	return l
}
