package netsim

import (
	"repro/internal/inet"
)

// Router is a generic packet forwarder. Specialized routers (access
// routers, the MAP, the home agent) are built on top of it through the
// Intercept and LocalDeliver hooks rather than by embedding, so that the
// protocol engines stay decoupled from the forwarding plane.
type Router struct {
	name   string
	addr   inet.Addr
	ifaces []*Iface

	prefixRoutes map[inet.NetID]*Iface
	hostRoutes   map[inet.Addr]*Iface

	// Intercept is consulted for every packet before normal forwarding.
	// Returning true means the hook consumed the packet. The fast-handover
	// engines use this to redirect and buffer packets mid-handoff.
	Intercept func(in *Iface, pkt *inet.Packet) bool

	// LocalDeliver handles packets addressed to the router itself (control
	// messages, tunnel endpoints). Tunnel packets terminating here are
	// decapsulated and re-forwarded automatically unless LocalDeliver
	// consumes them first by returning true.
	LocalDeliver func(in *Iface, pkt *inet.Packet) bool

	noRoute uint64
}

// NewRouter creates a router with the given name and its own address.
func NewRouter(name string, addr inet.Addr) *Router {
	return &Router{
		name:         name,
		addr:         addr,
		prefixRoutes: make(map[inet.NetID]*Iface),
		hostRoutes:   make(map[inet.Addr]*Iface),
	}
}

// Name implements Node.
func (r *Router) Name() string { return r.name }

// Addr returns the router's own address.
func (r *Router) Addr() inet.Addr { return r.addr }

// Ifaces returns the router's interfaces in attachment order.
func (r *Router) Ifaces() []*Iface { return r.ifaces }

// NoRouteDrops returns the number of packets dropped for lack of a route.
func (r *Router) NoRouteDrops() uint64 { return r.noRoute }

// AttachIface implements IfaceAttacher.
func (r *Router) AttachIface(ifc *Iface) { r.ifaces = append(r.ifaces, ifc) }

// AddPrefixRoute installs (or replaces) the next-hop interface for a
// network.
func (r *Router) AddPrefixRoute(n inet.NetID, via *Iface) { r.prefixRoutes[n] = via }

// AddHostRoute installs (or replaces) a host-specific route, which takes
// precedence over prefix routes. Fast handover uses host routes at the NAR
// for the mobile host's previous care-of address.
func (r *Router) AddHostRoute(a inet.Addr, via *Iface) { r.hostRoutes[a] = via }

// RemoveHostRoute deletes a host route.
func (r *Router) RemoveHostRoute(a inet.Addr) { delete(r.hostRoutes, a) }

// Route returns the forwarding interface for dst, or nil if none.
func (r *Router) Route(dst inet.Addr) *Iface {
	if via, ok := r.hostRoutes[dst]; ok {
		return via
	}
	return r.prefixRoutes[dst.Net]
}

// HandlePacket implements Node.
func (r *Router) HandlePacket(in *Iface, pkt *inet.Packet) {
	if r.Intercept != nil && r.Intercept(in, pkt) {
		return
	}
	if pkt.Dst == r.addr {
		if r.LocalDeliver != nil && r.LocalDeliver(in, pkt) {
			return
		}
		// A tunnel terminating here: decapsulate and forward the inner
		// packet as if it had just arrived.
		if inner := pkt.Decapsulate(); inner != nil {
			r.HandlePacket(in, inner)
		}
		return
	}
	r.Forward(pkt)
}

// Forward sends pkt toward its destination using the routing tables,
// counting a drop when no route exists.
func (r *Router) Forward(pkt *inet.Packet) {
	via := r.Route(pkt.Dst)
	if via == nil {
		r.noRoute++
		return
	}
	via.Send(pkt)
}

// SendFrom originates a packet at this router (control traffic sourced by
// the router itself).
func (r *Router) SendFrom(pkt *inet.Packet) { r.Forward(pkt) }
