package repro_test

// One benchmark per figure of the thesis' evaluation chapter. Each
// benchmark runs the figure's full scenario and reports its headline
// metric through b.ReportMetric, so `go test -bench .` regenerates the
// quantitative backbone of every figure. The richer text renderings come
// from `go run ./cmd/experiments`.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func BenchmarkFig42BufferUtilization(b *testing.B) {
	b.ReportAllocs()
	var res scenario.Fig42Result
	for i := 0; i < b.N; i++ {
		res = scenario.RunFig42(scenario.Fig42Params{MaxHosts: 12})
	}
	b.ReportMetric(float64(res.MaxLossFree("NAR")), "nar-capacity")
	b.ReportMetric(float64(res.MaxLossFree("PAR")), "par-capacity")
	b.ReportMetric(float64(res.MaxLossFree("DUAL")), "dual-capacity")
	b.ReportMetric(float64(res.Drops["FH"][11]), "fh-drops@12")
}

func benchDropTrace(b *testing.B, scheme core.Scheme, pool, alpha int) {
	b.Helper()
	b.ReportAllocs()
	var res scenario.DropTraceResult
	for i := 0; i < b.N; i++ {
		res = scenario.RunDropTrace(scenario.DropTraceParams{
			Scheme: scheme, PoolSize: pool, Alpha: alpha, Handoffs: 20,
		})
	}
	final := res.Final()
	b.ReportMetric(float64(final[0]), "rt-drops")
	b.ReportMetric(float64(final[1]), "hp-drops")
	b.ReportMetric(float64(final[2]), "be-drops")
}

func BenchmarkFig43OriginalFHDrops(b *testing.B) {
	b.ReportAllocs()
	benchDropTrace(b, core.SchemeFHOriginal, 40, 0)
}

func BenchmarkFig44ClassDisabledDrops(b *testing.B) {
	b.ReportAllocs()
	benchDropTrace(b, core.SchemeDual, 20, 0)
}

func BenchmarkFig45ClassEnabledDrops(b *testing.B) {
	b.ReportAllocs()
	benchDropTrace(b, core.SchemeEnhanced, 20, 6)
}

func BenchmarkFig46RateSweep(b *testing.B) {
	b.ReportAllocs()
	var res scenario.Fig46Result
	for i := 0; i < b.N; i++ {
		res = scenario.RunFig46(scenario.Fig46Params{})
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.Lost[0]), "rt-drops@427k")
	b.ReportMetric(float64(last.Lost[1]), "hp-drops@427k")
	b.ReportMetric(float64(last.Lost[2]), "be-drops@427k")
}

func benchDelayTrace(b *testing.B, p scenario.DelayTraceParams) {
	b.Helper()
	b.ReportAllocs()
	var res scenario.DelayTraceResult
	for i := 0; i < b.N; i++ {
		res = scenario.RunDelayTrace(p)
	}
	b.ReportMetric(res.MaxDelay(0).Milliseconds(), "rt-maxdelay-ms")
	b.ReportMetric(res.MaxDelay(1).Milliseconds(), "hp-maxdelay-ms")
	b.ReportMetric(res.MaxDelay(2).Milliseconds(), "be-maxdelay-ms")
}

func BenchmarkFig47OriginalFHDelay(b *testing.B) {
	b.ReportAllocs()
	benchDelayTrace(b, scenario.DelayTraceParams{
		Scheme: core.SchemeFHOriginal, PoolSize: 40,
	})
}

func BenchmarkFig48ProposedDelay(b *testing.B) {
	b.ReportAllocs()
	benchDelayTrace(b, scenario.DelayTraceParams{
		Scheme: core.SchemeDual, PoolSize: 20,
	})
}

func BenchmarkFig49LowARLinkDelay(b *testing.B) {
	b.ReportAllocs()
	benchDelayTrace(b, scenario.DelayTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
		ARLinkDelay: 2 * sim.Millisecond,
	})
}

func BenchmarkFig410HighARLinkDelay(b *testing.B) {
	b.ReportAllocs()
	benchDelayTrace(b, scenario.DelayTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
		ARLinkDelay: 50 * sim.Millisecond,
	})
}

func benchTCPTrace(b *testing.B, buffered bool) {
	b.Helper()
	b.ReportAllocs()
	var res scenario.TCPTraceResult
	for i := 0; i < b.N; i++ {
		res = scenario.RunTCPTrace(scenario.TCPTraceParams{Buffered: buffered})
	}
	b.ReportMetric(float64(res.Timeouts), "tcp-timeouts")
	b.ReportMetric(res.StallAfterDetach.Milliseconds(), "stall-ms")
	b.ReportMetric(float64(res.Delivered)/1e6, "delivered-MB")
}

func BenchmarkFig412TCPNoBuffer(b *testing.B) {
	b.ReportAllocs()
	benchTCPTrace(b, false)
}

func BenchmarkFig413TCPBuffered(b *testing.B) {
	b.ReportAllocs()
	benchTCPTrace(b, true)
}

func BenchmarkFig414Throughput(b *testing.B) {
	b.ReportAllocs()
	var res scenario.Fig414Result
	for i := 0; i < b.N; i++ {
		res = scenario.RunFig414()
	}
	b.ReportMetric(float64(res.Buffered.Delivered-res.Unbuffered.Delivered)/1e6,
		"buffering-gain-MB")
}

// BenchmarkBaselineLadder reports the Chapter 2 motivation: handoff loss
// down the mobility-management ladder from plain Mobile IP to the full
// enhanced scheme.
func BenchmarkBaselineLadder(b *testing.B) {
	b.ReportAllocs()
	var res scenario.BaselineResult
	for i := 0; i < b.N; i++ {
		res = scenario.RunBaseline()
	}
	b.ReportMetric(float64(res.Rows[0].Lost), "plain-mip-lost")
	b.ReportMetric(float64(res.Rows[1].Lost), "hmip-lost")
	b.ReportMetric(float64(res.Rows[2].Lost), "fh-lost")
	b.ReportMetric(float64(res.Rows[3].Lost), "enhanced-lost")
	b.ReportMetric(res.Rows[0].Outage.Milliseconds(), "plain-mip-outage-ms")
	b.ReportMetric(res.Rows[3].Outage.Milliseconds(), "enhanced-outage-ms")
}

// --- ablation benchmarks (design choices DESIGN.md calls out) ---

// BenchmarkAblationAlpha sweeps the α threshold: larger α protects more
// high-priority overflow at the PAR at the cost of best-effort drops.
func BenchmarkAblationAlpha(b *testing.B) {
	b.ReportAllocs()
	for _, alpha := range []int{0, 2, 6, 10} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			b.ReportAllocs()
			var res scenario.DropTraceResult
			for i := 0; i < b.N; i++ {
				res = scenario.RunDropTrace(scenario.DropTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: alpha, Handoffs: 10,
				})
			}
			final := res.Final()
			b.ReportMetric(float64(final[1]), "hp-drops")
			b.ReportMetric(float64(final[2]), "be-drops")
		})
	}
}

// BenchmarkAblationTCPVariant compares classic Reno against NewReno across
// the unbuffered link-layer handoff: the blackout loses a whole window, so
// both need the coarse timeout, but NewReno repairs the multi-hole window
// in one recovery afterwards.
func BenchmarkAblationTCPVariant(b *testing.B) {
	b.ReportAllocs()
	for _, newReno := range []bool{false, true} {
		newReno := newReno
		name := "reno"
		if newReno {
			name = "newreno"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var delivered uint64
			for i := 0; i < b.N; i++ {
				tb := scenario.NewWLANTestbed(scenario.WLANParams{NewReno: newReno})
				if err := tb.Run(20 * sim.Second); err != nil {
					b.Fatal(err)
				}
				delivered = tb.Receiver.Delivered()
			}
			b.ReportMetric(float64(delivered)/1e6, "delivered-MB")
		})
	}
}

// BenchmarkAblationHysteresis sweeps the trigger hysteresis: the margin
// buys flap resistance but spends the coverage-overlap budget; past
// ≈1.5 dB (this geometry's edge margin) anticipation fails and losses jump
// to a whole blackout's worth.
func BenchmarkAblationHysteresis(b *testing.B) {
	b.ReportAllocs()
	for _, hyst := range []float64{0, 1, 6} {
		hyst := hyst
		b.Run(fmt.Sprintf("hyst=%gdB", hyst), func(b *testing.B) {
			b.ReportAllocs()
			var lost uint64
			var anticipated bool
			for i := 0; i < b.N; i++ {
				lost, anticipated = scenario.HysteresisCost(hyst)
			}
			b.ReportMetric(float64(lost), "lost")
			antic := 0.0
			if anticipated {
				antic = 1
			}
			b.ReportMetric(antic, "anticipated")
		})
	}
}

// BenchmarkAblationDrainPacing sweeps the buffer drain pacing: line-rate
// release empties fastest; pacing trades release burstiness for tail
// delay.
func BenchmarkAblationDrainPacing(b *testing.B) {
	b.ReportAllocs()
	for _, pace := range []sim.Time{0, 2 * sim.Millisecond, 10 * sim.Millisecond} {
		pace := pace
		b.Run(fmt.Sprintf("pace=%.0fms", pace.Milliseconds()), func(b *testing.B) {
			b.ReportAllocs()
			var res scenario.DelayTraceResult
			for i := 0; i < b.N; i++ {
				res = scenario.RunDelayTrace(scenario.DelayTraceParams{
					Scheme: core.SchemeDual, PoolSize: 20, DrainInterval: pace,
				})
			}
			b.ReportMetric(res.MaxDelay(1).Milliseconds(), "hp-maxdelay-ms")
		})
	}
}

// BenchmarkTransferTime measures a 20 MB FTP download spanning the
// link-layer handoff: the buffering removes the timeout stall from the
// completion time.
func BenchmarkTransferTime(b *testing.B) {
	b.ReportAllocs()
	var buffered, unbuffered sim.Time
	for i := 0; i < b.N; i++ {
		buffered, unbuffered = scenario.TransferTime(20_000_000)
	}
	b.ReportMetric(buffered.Seconds(), "buffered-s")
	b.ReportMetric(unbuffered.Seconds(), "unbuffered-s")
	b.ReportMetric((unbuffered - buffered).Seconds(), "stall-cost-s")
}

// --- Monte-Carlo runner benchmarks ---

// benchRunnerPool fans replicasPerOp seeded replicas of the mobility
// ladder across the given worker bound. Comparing the Serial and
// Parallel variants measures the pool's actual speedup (≈ min(cores,
// replicas)× on a multi-core box; ≈ 1× on one core).
func benchRunnerPool(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	const replicasPerOp = 8
	spec := scenario.BaselineSpec()
	pool := runner.NewPool(workers)
	b.ResetTimer()
	var res *runner.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pool.Run(context.Background(), spec, replicasPerOp, 1)
		if err != nil {
			b.Fatal(err)
		}
		if n := res.Failed(); n > 0 {
			b.Fatalf("%d replicas failed: %v", n, res.FirstErr())
		}
	}
	for _, m := range res.Metrics {
		if m.Name == "lost_enhanced" {
			b.ReportMetric(m.Mean, "enhanced-lost-mean")
			b.ReportMetric(m.CI95, "enhanced-lost-ci95")
		}
	}
}

func BenchmarkRunnerSerial(b *testing.B) { benchRunnerPool(b, 1) }

func BenchmarkRunnerParallel(b *testing.B) { benchRunnerPool(b, runtime.GOMAXPROCS(0)) }

// BenchmarkAblationSignaling reports the control-message economy: the
// scheme piggybacks its options, so an anticipated handoff costs a fixed,
// small number of messages regardless of buffering.
func BenchmarkAblationSignaling(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []core.Scheme{core.SchemeFHNoBuffer, core.SchemeEnhanced} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			b.ReportAllocs()
			var total uint64
			for i := 0; i < b.N; i++ {
				total = scenario.CountControlMessages(scheme)
			}
			b.ReportMetric(float64(total), "control-msgs/handoff")
		})
	}
}
