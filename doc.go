// Package repro is the root of a from-scratch Go reproduction of
// "An Enhanced Buffer Management Scheme for Fast Handover Protocol"
// (Wei-Min Yao, National Chiao Tung University, 2003/2004).
//
// The public API lives in package repro/handover; the benchmark harness in
// bench_test.go regenerates every figure of the thesis' evaluation
// chapter. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
