// Command fhsim runs one fast-handover scenario on the reference topology
// and prints per-flow and per-handoff results.
//
// Usage examples:
//
//	fhsim                                    # one host, enhanced scheme
//	fhsim -scheme original -pool 40 -hosts 3
//	fhsim -classes rt,hp,be -interval 10ms -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/handover"
	"repro/internal/prof"
	simpkg "repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fhsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("fhsim", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "enhanced", "buffering scheme: none, original, par, dual, enhanced")
		pool       = fs.Int("pool", 40, "router buffer pool, packets")
		alpha      = fs.Int("alpha", 2, "best-effort admission threshold α")
		request    = fs.Int("request", 20, "per-handoff buffer request, packets")
		hosts      = fs.Int("hosts", 1, "number of mobile hosts")
		classes    = fs.String("classes", "rt,hp,be", "comma-separated flow classes per host: rt, hp, be")
		interval   = fs.Duration("interval", 20*time.Millisecond, "CBR packet interval")
		size       = fs.Int("size", 160, "CBR packet size, bytes")
		arDelay    = fs.Duration("ardelay", 2*time.Millisecond, "PAR–NAR link delay")
		l2Delay    = fs.Duration("l2delay", 200*time.Millisecond, "link-layer handoff blackout")
		duration   = fs.Duration("duration", 12*time.Second, "simulated duration")
		seed       = fs.Int64("seed", 1, "random seed")
		asJSON     = fs.Bool("json", false, "emit JSON instead of a table")
		partial    = fs.Bool("partial", false, "routers grant whatever buffer space remains (precise allocation)")
		authKey    = fs.String("auth", "", "shared key: authenticate all handover signalling")
		plainMIP   = fs.Bool("plainmip", false, "plain Mobile IP baseline instead of fast handover")
		haDelay    = fs.Duration("hadelay", 0, "anchor hosts at a home agent this far (one-way) behind the MAP")
		hysteresis = fs.Float64("hysteresis", 0, "signal-strength margin (dB) for the handover trigger")
		loss       = fs.Float64("loss", 0, "control-plane loss probability on the access links [0,1]")
		sched      = fs.String("sched", "", "event scheduler: heap or calendar (results are identical)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
		traceOut   = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sched != "" {
		kind, err := simpkg.ParseSchedulerKind(*sched)
		if err != nil {
			return err
		}
		simpkg.SetDefaultScheduler(kind)
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		return err
	}
	defer stopProfiles() //nolint:errcheck // profile teardown; run result takes precedence

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	flows, err := parseClasses(*classes, *size, *interval)
	if err != nil {
		return err
	}

	var key []byte
	if *authKey != "" {
		key = []byte(*authKey)
	}
	sim := handover.New(handover.Config{
		Scheme:               scheme,
		RouterBufferPackets:  *pool,
		Alpha:                *alpha,
		BufferRequestPackets: *request,
		ARLinkDelay:          *arDelay,
		L2HandoffDelay:       *l2Delay,
		PartialGrants:        *partial,
		AuthKey:              key,
		PlainMobileIP:        *plainMIP,
		HomeAgentDelay:       *haDelay,
		HysteresisDB:         *hysteresis,
		ControlLossRate:      *loss,
		Seed:                 *seed,
	})
	for i := 0; i < *hosts; i++ {
		sim.AddMobileHost(handover.LinearPath(50, 10), flows...)
	}
	if err := sim.Run(*duration); err != nil {
		return err
	}
	report := sim.Report()

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	printReport(out, report)
	return nil
}

func parseScheme(name string) (handover.Scheme, error) {
	switch strings.ToLower(name) {
	case "none", "nobuffer":
		return handover.NoBuffer, nil
	case "original", "nar":
		return handover.OriginalFH, nil
	case "par":
		return handover.PAROnly, nil
	case "dual":
		return handover.Dual, nil
	case "enhanced", "proposed":
		return handover.Enhanced, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

func parseClasses(spec string, size int, interval time.Duration) ([]handover.Flow, error) {
	var flows []handover.Flow
	for _, c := range strings.Split(spec, ",") {
		var class handover.Class
		switch strings.TrimSpace(strings.ToLower(c)) {
		case "rt", "realtime":
			class = handover.RealTime
		case "hp", "high":
			class = handover.HighPriority
		case "be", "besteffort":
			class = handover.BestEffort
		case "", "none":
			class = handover.Unspecified
		default:
			return nil, fmt.Errorf("unknown class %q", c)
		}
		flows = append(flows, handover.Flow{Class: class, PacketBytes: size, Interval: interval})
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("no flows specified")
	}
	return flows, nil
}

func printReport(out *os.File, report handover.Report) {
	fmt.Fprintf(out, "flows:\n")
	fmt.Fprintf(out, "  %-5s%-6s%-15s%10s%10s%8s%12s%12s\n",
		"host", "flow", "class", "sent", "delivered", "lost", "max delay", "mean delay")
	for _, f := range report.Flows {
		fmt.Fprintf(out, "  %-5d%-6d%-15s%10d%10d%8d%12s%12s\n",
			f.Host, f.Index, f.Class, f.Sent, f.Delivered, f.Lost,
			f.MaxDelay.Round(time.Millisecond), f.MeanDelay.Round(time.Millisecond))
	}
	fmt.Fprintf(out, "\nhandoffs:\n")
	for _, h := range report.Handoffs {
		kind := "network"
		if h.LinkLayerOnly {
			kind = "link-layer"
		}
		anticipation := "anticipated"
		if !h.Anticipated {
			anticipation = "unanticipated"
		}
		fmt.Fprintf(out, "  host %d: %s %s at %.3fs, blackout %v, grants nar=%t par=%t\n",
			h.Host, anticipation, kind, h.Detached.Seconds(),
			(h.Attached - h.Detached).Round(time.Millisecond), h.NARGranted, h.PARGranted)
	}
	if len(report.DropsByLocation) > 0 {
		fmt.Fprintf(out, "\ndrops by location:\n")
		for _, where := range []string{"par-buffer", "nar-buffer", "par-policy", "lifetime", "air"} {
			if n, ok := report.DropsByLocation[where]; ok {
				fmt.Fprintf(out, "  %-12s%6d\n", where, n)
			}
		}
	}
}
