package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestRunTable(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-hosts", "1", "-duration", "8s"}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, _ := os.ReadFile(f.Name())
	out := string(data)
	for _, want := range []string{"flows:", "handoffs:", "real-time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunJSON(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-json", "-duration", "8s"}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, _ := os.ReadFile(f.Name())
	if !strings.Contains(string(data), "\"Flows\"") {
		t.Error("JSON output missing Flows")
	}
}

func TestParseSchemeAndClasses(t *testing.T) {
	for _, name := range []string{"none", "original", "par", "dual", "enhanced"} {
		if _, err := parseScheme(name); err != nil {
			t.Errorf("parseScheme(%q): %v", name, err)
		}
	}
	if _, err := parseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
	flows, err := parseClasses("rt,hp,be,none", 160, 20*time.Millisecond)
	if err != nil || len(flows) != 4 {
		t.Fatalf("parseClasses: %v %v", flows, err)
	}
	if _, err := parseClasses("xx", 160, time.Millisecond); err == nil {
		t.Error("bogus class accepted")
	}
}

func TestBadFlags(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run([]string{"-scheme", "bogus"}, devnull); err == nil {
		t.Fatal("bogus scheme flag accepted")
	}
}
