// Command fhtrace runs a single fast-handover and prints a timestamped
// event trace: every control message, link event, buffer drop, and the
// final accounting — a teaching/debugging view of the protocol.
//
// Usage:
//
//	fhtrace                      # enhanced scheme, three-class traffic
//	fhtrace -scheme original -pool 10
//	fhtrace -ns2                 # ns-2-style one-line-per-event format
//	fhtrace -deliveries          # include every packet delivery
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wireless"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fhtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fhtrace", flag.ContinueOnError)
	schemeName := fs.String("scheme", "enhanced", "buffering scheme: none, original, par, dual, enhanced")
	pool := fs.Int("pool", 40, "router buffer pool, packets")
	request := fs.Int("request", 20, "per-handoff buffer request, packets")
	ns2 := fs.Bool("ns2", false, "emit ns-2-style trace lines")
	deliveries := fs.Bool("deliveries", false, "include every packet delivery in the trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}

	tb := scenario.NewTestbed(scenario.Params{
		Scheme:        scheme,
		PoolSize:      *pool,
		Alpha:         2,
		BufferRequest: *request,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: scenario.MHSpeed}, []scenario.FlowSpec{
		scenario.AudioFlow(inet.ClassRealTime),
		scenario.AudioFlow(inet.ClassHighPriority),
		scenario.AudioFlow(inet.ClassBestEffort),
	})
	log := trace.NewLog(0)
	tb.AttachTrace(log)

	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		return err
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		return err
	}

	// Deliveries dominate the log; filter them out unless requested.
	filtered := trace.NewLog(0)
	for _, ev := range log.Events() {
		if ev.Kind == trace.KindDeliver && !*deliveries {
			continue
		}
		filtered.Emit(ev)
	}

	if *ns2 {
		if err := trace.NewNS2Writer(os.Stdout).WriteLog(filtered); err != nil {
			return err
		}
	} else {
		fmt.Printf("Handover trace (%s, pool=%d, request=%d)\n\n", scheme, *pool, *request)
		fmt.Print(filtered.Render())
	}

	fmt.Printf("\nper-flow accounting:\n")
	for _, id := range unit.Flows {
		f := tb.Recorder.Flow(id)
		fmt.Printf("  %-14s sent=%d delivered=%d lost=%d maxDelay=%.0fms\n",
			f.Class, f.Sent, f.Delivered, f.Lost(), f.MaxDelay().Milliseconds())
	}
	return nil
}

func parseScheme(name string) (core.Scheme, error) {
	switch name {
	case "none", "nobuffer":
		return core.SchemeFHNoBuffer, nil
	case "original", "nar":
		return core.SchemeFHOriginal, nil
	case "par":
		return core.SchemePAROnly, nil
	case "dual":
		return core.SchemeDual, nil
	case "enhanced", "proposed":
		return core.SchemeEnhanced, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}
