package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunNS2(t *testing.T) {
	if err := run([]string{"-ns2", "-scheme", "dual", "-pool", "20"}); err != nil {
		t.Fatalf("run -ns2: %v", err)
	}
}

func TestRunBadScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}
