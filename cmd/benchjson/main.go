// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark runs as machine-readable
// artifacts and diffs across commits stay scriptable.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH_sim.json
//	go test -bench . ./internal/buffer | benchjson -baseline BENCH_buffer.json
//
// Each benchmark line becomes one record with the run count, ns/op, the
// allocation columns when present (-benchmem or b.ReportAllocs), and any
// custom b.ReportMetric units.
//
// With -baseline, the parsed run is additionally compared against a
// checked-in artifact: the command exits non-zero when any baselined
// benchmark is missing, slower than the baseline by more than -tolerance
// percent, or allocates more per op. Benchmarks absent from the baseline
// are archived but not gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name string `json:"name"`
	// Package is the `pkg:` header the line appeared under, when present.
	Package string  `json:"package,omitempty"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the line carried no allocation
	// columns.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds the custom b.ReportMetric columns, keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the artifact layout.
type Document struct {
	Schema     int      `json:"schema"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output file ('-': stdout)")
	baseline := flag.String("baseline", "", "compare against this artifact and fail on regressions")
	tolerance := flag.Float64("tolerance", 20, "allowed ns/op slowdown versus the baseline, in percent")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	failures := compare(base, doc, *tolerance)
	if len(failures) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d baselined benchmark(s) within %.0f%% of %s, no alloc regressions\n",
			len(base.Benchmarks), *tolerance, *baseline)
		return
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
	}
	os.Exit(1)
}

// load reads a previously written artifact.
func load(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc := &Document{}
	if err := json.NewDecoder(f).Decode(doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// recordKey identifies a benchmark across runs; the package qualifier
// disambiguates same-named benchmarks from different packages.
func recordKey(r Record) string {
	if r.Package != "" {
		return r.Package + "." + r.Name
	}
	return r.Name
}

// minGateNs is the floor under which ns/op is not gated: sub-nanosecond
// results sit below the timer's resolution and flap on noise alone. The
// allocs/op gate still applies to such benchmarks.
const minGateNs = 1.0

// compare gates the current run against a baseline. Every baselined
// benchmark must be present, within tolerancePct percent of the baseline
// ns/op, and no worse on allocs/op (any alloc increase fails — the
// hot-path benchmarks pin 0 allocs/op).
func compare(base, cur *Document, tolerancePct float64) []string {
	byKey := make(map[string]Record, len(cur.Benchmarks))
	byName := make(map[string]Record, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		byKey[recordKey(r)] = r
		byName[r.Name] = r
	}
	var failures []string
	for _, b := range base.Benchmarks {
		c, ok := byKey[recordKey(b)]
		if !ok {
			// Fall back to the bare name so hand-trimmed baselines and
			// runs without pkg: headers still match.
			c, ok = byName[b.Name]
		}
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: baselined benchmark missing from this run", b.Name))
			continue
		}
		if limit := b.NsPerOp * (1 + tolerancePct/100); b.NsPerOp >= minGateNs && c.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.4g ns/op, more than %.0f%% over baseline %.4g ns/op",
				b.Name, c.NsPerOp, tolerancePct, b.NsPerOp))
		}
		if b.AllocsPerOp >= 0 && c.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %g allocs/op, baseline allows %g",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return failures
}

// parse reads `go test -bench` output and extracts every benchmark line.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Schema: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		rec, ok := parseLine(line)
		if !ok {
			continue
		}
		rec.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	return doc, sc.Err()
}

// parseLine splits one "BenchmarkName-8  runs  value unit  ..." line.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: name, Runs: runs, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		default:
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[unit] = v
		}
	}
	return rec, true
}
