package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleAndRun-8   	 4812392	       249.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerChurn/heap-8         	 2011730	       173.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkBaselineLadder 	       1	   1378063 ns/op	         0 enhanced-lost	       208.8 enhanced-outage-ms	  595656 B/op	    4176 allocs/op
PASS
ok  	repro/internal/sim	1.851s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU == "" {
		t.Errorf("header not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkScheduleAndRun" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Runs != 4812392 || first.NsPerOp != 249 || first.AllocsPerOp != 0 {
		t.Errorf("columns misparsed: %+v", first)
	}
	if doc.Benchmarks[1].Name != "BenchmarkSchedulerChurn/heap" {
		t.Errorf("sub-benchmark name mangled: %q", doc.Benchmarks[1].Name)
	}
	ladder := doc.Benchmarks[2]
	if ladder.Package != "repro/internal/sim" {
		t.Errorf("package not tracked: %q", ladder.Package)
	}
	if ladder.Metrics["enhanced-outage-ms"] != 208.8 || ladder.Metrics["enhanced-lost"] != 0 {
		t.Errorf("custom metrics misparsed: %+v", ladder.Metrics)
	}
	if ladder.AllocsPerOp != 4176 || ladder.BytesPerOp != 595656 {
		t.Errorf("alloc columns misparsed: %+v", ladder)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 12 ns/op",
		"BenchmarkX 3 what ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
