package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleAndRun-8   	 4812392	       249.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerChurn/heap-8         	 2011730	       173.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkBaselineLadder 	       1	   1378063 ns/op	         0 enhanced-lost	       208.8 enhanced-outage-ms	  595656 B/op	    4176 allocs/op
PASS
ok  	repro/internal/sim	1.851s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU == "" {
		t.Errorf("header not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkScheduleAndRun" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Runs != 4812392 || first.NsPerOp != 249 || first.AllocsPerOp != 0 {
		t.Errorf("columns misparsed: %+v", first)
	}
	if doc.Benchmarks[1].Name != "BenchmarkSchedulerChurn/heap" {
		t.Errorf("sub-benchmark name mangled: %q", doc.Benchmarks[1].Name)
	}
	ladder := doc.Benchmarks[2]
	if ladder.Package != "repro/internal/sim" {
		t.Errorf("package not tracked: %q", ladder.Package)
	}
	if ladder.Metrics["enhanced-outage-ms"] != 208.8 || ladder.Metrics["enhanced-lost"] != 0 {
		t.Errorf("custom metrics misparsed: %+v", ladder.Metrics)
	}
	if ladder.AllocsPerOp != 4176 || ladder.BytesPerOp != 595656 {
		t.Errorf("alloc columns misparsed: %+v", ladder)
	}
}

// rec builds a minimal record for compare tests.
func rec(name string, ns, allocs float64) Record {
	return Record{Name: name, Package: "repro/internal/buffer", Runs: 1,
		NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: allocs}
}

func TestCompare(t *testing.T) {
	base := &Document{Benchmarks: []Record{
		rec("BenchmarkPushPop", 10, 0),
		rec("BenchmarkPushDropHeadSweep/cap4096", 12, 0),
	}}
	ok := &Document{Benchmarks: []Record{
		rec("BenchmarkPushPop", 11.9, 0), // +19%: inside the 20% window
		rec("BenchmarkPushDropHeadSweep/cap4096", 9, 0),
		rec("BenchmarkUnrelated", 9999, 42), // not baselined, not gated
	}}
	if failures := compare(base, ok, 20); len(failures) != 0 {
		t.Fatalf("clean run flagged: %v", failures)
	}

	slow := &Document{Benchmarks: []Record{
		rec("BenchmarkPushPop", 12.1, 0), // +21%
		rec("BenchmarkPushDropHeadSweep/cap4096", 12, 0),
	}}
	failures := compare(base, slow, 20)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkPushPop") ||
		!strings.Contains(failures[0], "ns/op") {
		t.Fatalf("ns/op regression not flagged: %v", failures)
	}

	allocs := &Document{Benchmarks: []Record{
		rec("BenchmarkPushPop", 10, 1), // any alloc regression fails
		rec("BenchmarkPushDropHeadSweep/cap4096", 12, 0),
	}}
	failures = compare(base, allocs, 20)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", failures)
	}

	missing := &Document{Benchmarks: []Record{rec("BenchmarkPushPop", 10, 0)}}
	failures = compare(base, missing, 20)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", failures)
	}
}

func TestCompareMatchesByBareName(t *testing.T) {
	base := &Document{Benchmarks: []Record{
		{Name: "BenchmarkPushPop", NsPerOp: 10, BytesPerOp: -1, AllocsPerOp: 0},
	}}
	cur := &Document{Benchmarks: []Record{rec("BenchmarkPushPop", 10, 0)}}
	if failures := compare(base, cur, 20); len(failures) != 0 {
		t.Fatalf("package-less baseline did not match: %v", failures)
	}
	// A benchmark with no alloc columns (-1) must not gate allocs.
	base.Benchmarks[0].AllocsPerOp = -1
	cur.Benchmarks[0].AllocsPerOp = 57
	if failures := compare(base, cur, 20); len(failures) != 0 {
		t.Fatalf("unbaselined alloc column gated: %v", failures)
	}
}

func TestCompareSkipsSubNanosecondTiming(t *testing.T) {
	base := &Document{Benchmarks: []Record{rec("BenchmarkDecide", 0.15, 0)}}
	cur := &Document{Benchmarks: []Record{rec("BenchmarkDecide", 0.9, 0)}}
	if failures := compare(base, cur, 20); len(failures) != 0 {
		t.Fatalf("sub-ns timing noise gated: %v", failures)
	}
	// ... but its alloc gate still holds.
	cur.Benchmarks[0].AllocsPerOp = 1
	if failures := compare(base, cur, 20); len(failures) != 1 {
		t.Fatalf("sub-ns alloc regression not flagged: %v", failures)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 12 ns/op",
		"BenchmarkX 3 what ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
