package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestUnknownFigure(t *testing.T) {
	err := run([]string{"-fig", "9.9"})
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v, want unknown-figure error", err)
	}
}

func TestSingleFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "4.9", "-csv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4_9.csv"))
	if err != nil {
		t.Fatalf("csv missing: %v", err)
	}
	if !strings.HasPrefix(string(data), "seq,") {
		t.Fatalf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
