package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/runner"
)

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"4.2", "runner specs", "baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	err := run([]string{"-fig", "9.9"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v, want unknown-figure error", err)
	}
}

func TestSingleFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "4.9", "-csv", dir}, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4_9.csv"))
	if err != nil {
		t.Fatalf("csv missing: %v", err)
	}
	if !strings.HasPrefix(string(data), "seq,") {
		t.Fatalf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestUnknownSpec(t *testing.T) {
	err := run([]string{"-replicas", "1", "-spec", "fig9.9"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown spec") {
		t.Fatalf("err = %v, want unknown-spec error", err)
	}
}

// TestJSONArtifactDeterministicAcrossParallelism is the acceptance
// check: the same root seed and replica count must produce a
// byte-identical artifact (modulo timing fields) whether the replicas ran
// on one worker or eight.
func TestJSONArtifactDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica scenario runs are slow")
	}
	dir := t.TempDir()
	artifact := func(workers int, path string) []byte {
		args := []string{
			"-spec", "baseline", "-replicas", "3", "-seed", "42",
			"-parallel", strconv.Itoa(workers),
			"-json", path,
		}
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("run -parallel %d: %v", workers, err)
		}
		if !strings.Contains(out.String(), "baseline (n=3)") {
			t.Fatalf("-parallel %d text output missing aggregate:\n%s", workers, out.String())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		doc, err := runner.DecodeDocument(f)
		if err != nil {
			t.Fatalf("artifact does not parse: %v", err)
		}
		if doc.Schema != runner.SchemaVersion || doc.RootSeed != 42 || doc.Replicas != 3 {
			t.Fatalf("artifact header wrong: %+v", doc)
		}
		for _, rep := range doc.Results[0].Replicas {
			if rep.Seed != runner.ReplicaSeed(42, rep.Index) {
				t.Fatalf("replica %d has seed %d, want derived %d",
					rep.Index, rep.Seed, runner.ReplicaSeed(42, rep.Index))
			}
		}
		doc.Canonicalize()
		var buf bytes.Buffer
		if err := doc.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := artifact(1, filepath.Join(dir, "serial.json"))
	parallel := artifact(8, filepath.Join(dir, "parallel.json"))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("artifacts diverge across -parallel 1 vs 8:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestExplicitSpecImpliesOneReplica pins the `-spec NAME` shorthand: an
// explicit spec selection without -replicas runs one full replica through
// the runner instead of silently falling back to the figure path.
func TestExplicitSpecImpliesOneReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run is slow")
	}
	var out bytes.Buffer
	if err := run([]string{"-spec", "baseline"}, &out); err != nil {
		t.Fatalf("run -spec: %v", err)
	}
	if !strings.Contains(out.String(), "baseline (n=1)") {
		t.Fatalf("-spec alone did not run one replica:\n%s", out.String())
	}
}

func TestSeedsAliasUsesRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run is slow")
	}
	var out bytes.Buffer
	if err := run([]string{"-seeds", "2", "-spec", "baseline"}, &out); err != nil {
		t.Fatalf("run -seeds: %v", err)
	}
	if !strings.Contains(out.String(), "baseline (n=2)") {
		t.Fatalf("-seeds output missing aggregate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "lost_enhanced") {
		t.Fatalf("-seeds output missing metric rows:\n%s", out.String())
	}
}

func TestWorkersAndEpochModeFlagsPreserveArtifacts(t *testing.T) {
	// -workers and -fixed-epochs change execution strategy only: the city
	// spec's artifact must be byte-identical (canonicalized) across both.
	if testing.Short() {
		t.Skip("scenario runs are slow")
	}
	dir := t.TempDir()
	artifact := func(path string, extra ...string) []byte {
		args := append([]string{"-spec", "city", "-replicas", "1", "-seed", "11", "-json", path}, extra...)
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("run %v: %v", extra, err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		doc, err := runner.DecodeDocument(f)
		if err != nil {
			t.Fatalf("artifact does not parse: %v", err)
		}
		doc.Canonicalize()
		var buf bytes.Buffer
		if err := doc.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := artifact(filepath.Join(dir, "adaptive.json"), "-workers", "2")
	fixed := artifact(filepath.Join(dir, "fixed.json"), "-workers", "3", "-fixed-epochs")
	if !bytes.Equal(ref, fixed) {
		t.Fatalf("artifacts diverge across -workers/-fixed-epochs:\n%s\nvs\n%s", ref, fixed)
	}
}
