// Command experiments regenerates every table and figure of the thesis'
// evaluation chapter as text tables.
//
// Usage:
//
//	experiments             # run everything, in thesis order
//	experiments -fig 4.5    # run one figure
//	experiments -list       # list available figures
//	experiments -csv DIR    # additionally write each figure's data as CSV
//	experiments -seeds 5    # headline metrics across seeds, mean ± sd
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "", "run only this figure (e.g. 4.5)")
	list := fs.Bool("list", false, "list available figures")
	csvDir := fs.String("csv", "", "write each figure's data points as CSV into this directory")
	seeds := fs.Int("seeds", 0, "rerun the headline metrics across N seeds and report mean ± sd")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds > 0 {
		fmt.Printf("Headline metrics across %d seeds (mean ± sd [min, max]):\n\n", *seeds)
		fmt.Print(scenario.RenderSweep(scenario.SweepFig42(*seeds, scenario.Fig42Params{})))
		fmt.Print(scenario.RenderSweep(scenario.SweepBaseline(*seeds)))
		return nil
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	exps := scenario.Experiments()
	if *list {
		for _, exp := range exps {
			fmt.Printf("%-6s %s\n", exp.ID, exp.Title)
		}
		return nil
	}

	matched := false
	for _, exp := range exps {
		if *fig != "" && exp.ID != *fig {
			continue
		}
		matched = true
		fmt.Printf("=== Figure %s — %s ===\n\n", exp.ID, exp.Title)
		result := exp.Run()
		fmt.Println(result.Render())
		if *csvDir != "" {
			if cw, ok := result.(scenario.CSVWriter); ok {
				path := filepath.Join(*csvDir, "fig"+strings.ReplaceAll(exp.ID, ".", "_")+".csv")
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := cw.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("(data written to %s)\n\n", path)
			}
		}
	}
	if !matched {
		known := make([]string, 0, len(exps))
		for _, exp := range exps {
			known = append(known, exp.ID)
		}
		return fmt.Errorf("unknown figure %q (have: %s)", *fig, strings.Join(known, ", "))
	}
	return nil
}
