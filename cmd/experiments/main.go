// Command experiments regenerates every table and figure of the thesis'
// evaluation chapter as text tables, and fans Monte-Carlo replicas of the
// headline experiments across a worker pool to report distributions
// (mean ± sd, 95% CI) instead of point estimates.
//
// Usage:
//
//	experiments                 # run everything, in thesis order
//	experiments -fig 4.5        # run one figure
//	experiments -list           # list available figures and runner specs
//	experiments -csv DIR        # additionally write each figure's data as CSV
//	experiments -replicas 32    # 32 seeded replicas of the headline specs
//	experiments -replicas 32 -parallel 8 -json out.json
//	                            # ... across 8 workers, JSON artifact
//	experiments -seeds 5        # shorthand for -replicas 5
//	experiments -spec baseline -replicas 16
//	                            # choose the specs (comma-separated)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// defaultSpecs are the headline experiments the replica fan-out runs when
// -spec is not given: the buffer-capacity claim (Fig 4.2) and the
// mobility-management ladder.
const defaultSpecs = "fig4.2,baseline"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "", "run only this figure (e.g. 4.5)")
	list := fs.Bool("list", false, "list available figures and runner specs")
	csvDir := fs.String("csv", "", "write each figure's data points as CSV into this directory")
	replicas := fs.Int("replicas", 0, "fan out N seeded Monte-Carlo replicas of the selected specs")
	seeds := fs.Int("seeds", 0, "alias for -replicas (the pre-runner flag name)")
	parallel := fs.Int("parallel", 0, "worker bound for the replica pool (0: GOMAXPROCS)")
	rootSeed := fs.Int64("seed", 1, "root seed; per-replica seeds are derived from it")
	jsonOut := fs.String("json", "", "write the replica run's result document to this file ('-': stdout)")
	specList := fs.String("spec", defaultSpecs, "comma-separated runner specs for -replicas (see -list)")
	sched := fs.String("sched", "", "event scheduler: heap or calendar (default: heap; results are identical)")
	shards := fs.Int("shards", 0, "shard count for the city scenario (0: fixed default; results depend on the shard count, never on workers)")
	workers := fs.Int("workers", 0, "goroutines running city shards (0: GOMAXPROCS; any value yields byte-identical results)")
	fixedEpochs := fs.Bool("fixed-epochs", false, "run the city shard barrier in fixed-width epoch mode (the adaptive baseline; results are identical)")
	fused := fs.Bool("fused", netsim.FusedLinks(), "analytic link transmit path: one scheduler event per wired hop instead of two (results are identical; -fused=false is the classic baseline)")
	fusedAir := fs.Bool("fused-air", wireless.FusedAir(), "analytic radio transmit path: one scheduler event per air frame instead of two (results are identical; -fused-air=false is the classic baseline, also selected by WIRELESS_FUSED=0)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sched != "" {
		kind, err := sim.ParseSchedulerKind(*sched)
		if err != nil {
			return err
		}
		sim.SetDefaultScheduler(kind)
	}
	scenario.SetDefaultCityShards(*shards)
	scenario.SetDefaultCityWorkers(*workers)
	scenario.SetDefaultCityFixedEpochs(*fixedEpochs)
	netsim.SetFusedLinks(*fused)
	wireless.SetFusedAir(*fusedAir)
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		return err
	}
	defer stopProfiles() //nolint:errcheck // profile teardown; run result takes precedence
	if *replicas == 0 {
		*replicas = *seeds
	}
	if *replicas < 0 {
		return fmt.Errorf("-replicas must be positive (got %d)", *replicas)
	}
	if *replicas == 0 && *jsonOut != "" {
		*replicas = 1
	}
	// An explicit -spec selection means the user wants the runner path;
	// default to a single replica so `-spec metro` alone does a full run.
	if *replicas == 0 {
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "spec" {
				*replicas = 1
			}
		})
	}
	if *replicas > 0 {
		return runReplicas(stdout, *specList, *replicas, *parallel, *rootSeed, *jsonOut)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	exps := scenario.Experiments()
	if *list {
		fmt.Fprintln(stdout, "figures (-fig):")
		for _, exp := range exps {
			fmt.Fprintf(stdout, "  %-6s %s\n", exp.ID, exp.Title)
		}
		fmt.Fprintln(stdout, "\nrunner specs (-spec, with -replicas):")
		for _, spec := range scenario.Specs() {
			if d, ok := spec.(interface{ Describe() string }); ok && d.Describe() != "" {
				fmt.Fprintf(stdout, "  %-11s %s\n", spec.Name(), d.Describe())
				continue
			}
			fmt.Fprintf(stdout, "  %s\n", spec.Name())
		}
		return nil
	}

	matched := false
	for _, exp := range exps {
		if *fig != "" && exp.ID != *fig {
			continue
		}
		matched = true
		fmt.Fprintf(stdout, "=== Figure %s — %s ===\n\n", exp.ID, exp.Title)
		result := exp.Run()
		fmt.Fprintln(stdout, result.Render())
		if *csvDir != "" {
			if cw, ok := result.(scenario.CSVWriter); ok {
				path := filepath.Join(*csvDir, "fig"+strings.ReplaceAll(exp.ID, ".", "_")+".csv")
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := cw.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "(data written to %s)\n\n", path)
			}
		}
	}
	if !matched {
		known := make([]string, 0, len(exps))
		for _, exp := range exps {
			known = append(known, exp.ID)
		}
		return fmt.Errorf("unknown figure %q (have: %s)", *fig, strings.Join(known, ", "))
	}
	return nil
}

// runReplicas fans the selected specs across the worker pool and reports
// aggregated distributions, optionally as a JSON artifact.
func runReplicas(stdout io.Writer, specList string, replicas, parallel int, rootSeed int64, jsonOut string) error {
	var specs []runner.Spec
	for _, name := range strings.Split(specList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec, err := scenario.SpecByName(name)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return fmt.Errorf("no specs selected")
	}

	pool := runner.NewPool(parallel)
	doc := runner.NewDocument("experiments", rootSeed, replicas, pool.Workers())
	start := time.Now()
	fmt.Fprintf(stdout, "%d replicas × %d spec(s) across %d worker(s), root seed %d "+
		"(mean ± sd, 95%% CI half-width, [min, max]):\n\n",
		replicas, len(specs), pool.Workers(), rootSeed)
	var failures int
	for _, spec := range specs {
		res, err := pool.Run(context.Background(), spec, replicas, rootSeed)
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, *res)
		failures += res.Failed()
		fmt.Fprint(stdout, renderResult(res))
	}
	doc.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)

	if jsonOut != "" {
		w := stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := doc.Encode(w); err != nil {
			return err
		}
		if jsonOut != "-" {
			fmt.Fprintf(stdout, "(result document written to %s)\n", jsonOut)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d replicas failed", failures, replicas*len(specs))
	}
	return nil
}

// renderResult formats one spec's aggregate as text rows.
func renderResult(res *runner.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d", res.Spec, len(res.Replicas))
	if failed := res.Failed(); failed > 0 {
		fmt.Fprintf(&b, ", %d FAILED", failed)
	}
	b.WriteString(")\n")
	for _, m := range res.Metrics {
		fmt.Fprintf(&b, "  %-28s %10.2f ± %-8.2f CI95 ±%-8.2f [%g, %g]\n",
			m.Name, m.Mean, m.StdDev, m.CI95, m.Min, m.Max)
	}
	for _, rep := range res.Replicas {
		if rep.Error != "" {
			fmt.Fprintf(&b, "  replica %d (seed %d) FAILED: %s\n", rep.Index, rep.Seed, rep.Error)
		}
	}
	b.WriteByte('\n')
	return b.String()
}
